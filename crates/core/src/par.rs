//! The parallel wave-execution backend of the [`Emulator`](crate::Emulator).
//!
//! The paper's group built a 32–128-processor emulation facility (Fig
//! 3-1) because measuring the parallelism profiles of *large* programs on
//! one processor was too slow. This module is that facility for the
//! reproduction: it executes the emulator's waves across a pool of scoped
//! worker threads while producing an [`EmuResult`] that is **bit-identical**
//! to the sequential backend's, for every program.
//!
//! # The decoordinated steady state
//!
//! The first version of this backend funnelled every context allocation
//! and every structure operation through the coordinating thread — the
//! very von Neumann bottleneck the paper argues against. The steady state
//! is now coordinator-free:
//!
//! - **Leased id ranges.** Workers allocate context ids from pre-leased
//!   blocks of a lock-free [`SharedContexts`] table, so `D`/`Apply`
//!   firings execute *on the workers* without a round-trip through the
//!   coordinator and without any context lock. Context id values then
//!   differ from a sequential run, but they never escape an
//!   [`EmuResult`]: `contexts` is the semantic allocation count, which
//!   the shared loop-activation memo keeps exact.
//! - **Batched shard traffic.** A firing's `IFetch`/`IStore` is buffered
//!   on the executing worker, keyed by the shard that owns the structure,
//!   and flushed as **one message per peer per wave** on a dedicated
//!   worker-to-worker channel (combining, per the Ultracomputer
//!   retrospective). The owning shard sorts the merged batches by wave
//!   index before applying, reproducing sequential per-structure order.
//!   Only structure *ids* still come from the coordinator's merge walk,
//!   because they escape into results via [`Value::Ptr`] and must be
//!   dense in firing order.
//! - **Work stealing.** Absorption is owner-only (a token must enter its
//!   home matching shard), but execution of the enabled firings is pure.
//!   Each worker publishes its ready firings in a shared per-worker
//!   queue; a worker that drains its own queue steals the back half of
//!   the most-loaded peer's queue instead of idling at the wave barrier.
//!   Results carry their wave index, so the merge is oblivious to who
//!   executed what. Steals are reported as `WorkSteal` trace events —
//!   scheduling annotations whose count and position depend on host
//!   scheduling; the semantic event stream is unchanged.
//!
//! # How determinism is preserved
//!
//! Within one wave the sequential backend processes tokens in wave order:
//! absorb into the waiting–matching store (updating the running occupancy
//! peak per token), fire if enabled, apply any I-structure action inline,
//! and append the firing's outputs to the next wave. The parallel backend
//! reproduces that order exactly from unordered parallel work:
//!
//! - **Sharded matching.** Each worker owns the waiting–matching shard
//!   for the activity names that hash to it, so a token's absorption is a
//!   pure function of its shard's state. Workers absorb their tokens in
//!   ascending wave index and report `(index, occupancy delta)` records;
//!   the coordinator replays the deltas in index order, which
//!   reconstructs the exact running occupancy — and thus `peak_matching` —
//!   of a sequential run.
//! - **Sharded structures.** Allocation ids are assigned by the
//!   coordinator in firing order; fetches and stores are applied by the
//!   owning shard in ascending wave index (cut at the first error's
//!   index, as the coordinator instructs). Operations on distinct
//!   structures commute, so per-shard index order reproduces the
//!   sequential cell states, released-reader orders and
//!   immediate/deferred counts.
//! - **Deterministic merge.** The next wave is assembled strictly in
//!   firing order: each firing's direct output tokens, then its structure
//!   action's tokens — the exact append order of the sequential `fire`.
//!   Trace events are synthesized (or replayed from worker-filled
//!   [`EventBuffer`]s) in the same order, so order-sensitive sinks
//!   observe the sequential event stream (plus the scheduling
//!   annotations noted above, emitted after the wave's semantic events).
//! - **Error precedence.** The first error in wave-index order wins, and
//!   an `OutOfFuel` at firing *q* loses to any error at a firing ≤ *q* —
//!   exactly the sequential control flow. Workers may speculatively
//!   execute firings past an error's index; everything they produce is
//!   discarded by the index cut, and the run returns `Err`, so nothing
//!   speculative is observable.
//!
//! `loop_bound` (k-bounded loops) forces the sequential backend: its
//! holding-pen scheduling is a global, order-sensitive fixpoint that
//! would serialize the workers anyway.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use ttda_mem::{shard_of, Addr, IStructureShard, Presence, ReadOutcome};
use ttda_sim::Cycle;
use ttda_trace::{EventBuffer, PresenceState, SharedSink, TraceEvent};

use crate::context::{SharedContexts, WorkerCtx};
use crate::emu::EmuResult;
use crate::exec::{absorb, execute, Continuation, StructAction};
use crate::graph::Program;
use crate::matching::{MatchingStore, Operands};
use crate::sched::{CritMap, SchedPolicy};
use crate::tag::{ActivityName, Iter, Port, Token};
use crate::value::{StructRef, Value};
use crate::ExecError;

/// Stafford's mix13 finalizer — the same mixer the timed machine uses to
/// spread activity names over PEs. Deterministic across runs/platforms.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The worker whose waiting–matching shard owns `tag`.
///
/// Deliberately *not* the hash [`crate::matching`] uses for bucket
/// placement: this one mixes a lossy 48-bit packing, the store folds the
/// full 128-bit name through fibonacci multiplies. If they agreed, all
/// keys owned by one shard would collide into one probe chain of that
/// shard's table (`matching::tests::shard_resident_keys_spread_over_buckets`
/// guards the independence).
pub(crate) fn worker_of(tag: ActivityName, workers: usize) -> usize {
    let packed =
        (tag.u.0 as u64) << 48 | (tag.c.0 as u64) << 36 | (tag.s.0 as u64) << 16 | tag.i.0 as u64;
    (mix(packed) % workers as u64) as usize
}

/// A structure operation routed to the shard that owns the structure.
pub(crate) struct StructOp {
    /// Wave index of the firing that requested the operation.
    pub(crate) index: u32,
    /// The firing's activity name (for error rendering).
    pub(crate) tag: ActivityName,
    pub(crate) action: StructAction,
}

/// Work sent from the coordinator to one worker.
enum Job {
    /// Absorb this worker's (possibly empty) slice of a wave in ascending
    /// wave index, then join the shared execution pool — executing own
    /// and stolen firings — until the wave's enabled set is exhausted.
    Wave(Vec<(u32, Token)>),
    /// Apply the structure operations batched at this shard (own plus
    /// everything peers flushed over the ops channel), in ascending wave
    /// index, skipping ops at indices ≥ `cut` (the first error's index).
    /// `creates` registers ids the coordinator allocated this wave.
    Struct {
        now: Cycle,
        creates: Vec<(u32, usize)>,
        cut: u32,
    },
}

/// Everything a worker-side firing produced. `Fetch`/`Store` actions are
/// *not* here — they went straight to the owning shard's batch buffer.
struct FireOut {
    is_alu: bool,
    tokens: Vec<Token>,
    output: Option<(u32, Value)>,
    /// An `IAlloc` request: the coordinator assigns the id (dense, in
    /// firing order) and builds the pointer tokens.
    alloc: Option<(usize, Continuation)>,
}

/// An enabled firing awaiting execution (by its owner or by a thief).
struct Ready {
    index: u32,
    tag: ActivityName,
    operands: Operands,
}

struct WaveReply {
    /// `(wave index, occupancy delta)` per absorbed token, in order.
    deltas: Vec<(u32, isize)>,
    /// Executed firings (own and stolen), keyed by wave index.
    fires: Vec<(u32, FireOut)>,
    err: Option<(u32, ExecError)>,
    /// Whether this worker buffered any structure ops this wave.
    has_ops: bool,
    /// `(victim, firings moved)` per steal this worker performed.
    steals: Vec<(u32, u64)>,
}

/// Tokens and trace events produced by one structure operation.
pub(crate) struct OpOut {
    pub(crate) index: u32,
    pub(crate) tokens: Vec<Token>,
    pub(crate) traces: EventBuffer,
}

struct StructReply {
    outs: Vec<OpOut>,
    err: Option<(u32, ExecError)>,
    /// Deferred reads outstanding in this worker's shard after the ops.
    deferred_outstanding: usize,
    immediate: u64,
    deferred: u64,
    writes: u64,
}

enum Reply {
    Wave(WaveReply),
    Struct(StructReply),
}

/// Firings an owner drains from its own queue per lock acquisition.
const DRAIN_BATCH: usize = 8;

/// State shared by all workers for intra-wave work stealing.
struct StealPool {
    /// Per-worker ready queues. Owners push their whole enabled set and
    /// pop from the front; thieves split off the back half.
    queues: Vec<Mutex<VecDeque<Ready>>>,
    /// Advisory per-queue lengths for victim selection.
    loads: Vec<AtomicUsize>,
    /// Workers that have finished absorbing this wave.
    absorb_done: AtomicUsize,
    /// Firings published / executed this wave. The execution phase is
    /// over when `absorb_done == threads` and `executed == published`.
    published: AtomicUsize,
    executed: AtomicUsize,
}

impl StealPool {
    fn new(threads: usize) -> Self {
        StealPool {
            queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            loads: (0..threads).map(|_| AtomicUsize::new(0)).collect(),
            absorb_done: AtomicUsize::new(0),
            published: AtomicUsize::new(0),
            executed: AtomicUsize::new(0),
        }
    }

    /// Coordinator-side reset between waves. Safe because every worker
    /// has replied, so none is touching the pool.
    fn reset(&self) {
        self.absorb_done.store(0, Ordering::SeqCst);
        self.published.store(0, Ordering::SeqCst);
        self.executed.store(0, Ordering::SeqCst);
    }
}

/// Entry point: the parallel equivalent of `Emulator::submit`. `fuel`
/// is the already-resolved batch budget (machine fuel merged with the
/// jobs' fuel shares by the caller). `threads == 1` runs the full
/// protocol with a single worker — that is what the coordinator-overhead
/// benchmark measures.
pub(crate) fn submit(
    program: &Program,
    jobs: &[crate::machine::Job],
    threads: usize,
    fuel: u64,
    sched: SchedPolicy,
    sink: Option<SharedSink>,
) -> Result<EmuResult, ExecError> {
    debug_assert!(threads >= 1, "parallel backend needs at least one worker");
    let crit = (sched == SchedPolicy::Crit).then(|| CritMap::of(program));
    let ctxs = SharedContexts::new(program.main);
    let mut wave: Vec<Token> = Vec::new();
    for job in jobs {
        let (block_id, inputs) = (&job.block, &job.inputs);
        let block = program.block(*block_id).ok_or(ExecError::BadTarget {
            activity: block_id.to_string(),
        })?;
        if inputs.len() != block.params.len() {
            return Err(ExecError::InputArity {
                expected: block.params.len(),
                got: inputs.len(),
            });
        }
        let root = ctxs.new_root(*block_id);
        for (k, v) in inputs.iter().enumerate() {
            wave.push(Token::new(
                ActivityName {
                    u: root,
                    c: *block_id,
                    s: block.params[k],
                    i: Iter::ONE,
                },
                Port(0),
                *v,
            ));
        }
    }
    if let Some(s) = &sink {
        let mut s = s.borrow_mut();
        for _ in 0..wave.len() {
            s.record(Cycle::ZERO, &TraceEvent::TokenEmit { pe: 0 });
        }
    }

    let pool = StealPool::new(threads);
    let traced = sink.is_some();
    std::thread::scope(|scope| {
        let (job_txs, job_rxs): (Vec<_>, Vec<_>) = (0..threads).map(|_| channel::<Job>()).unzip();
        let (ops_txs, ops_rxs): (Vec<_>, Vec<_>) =
            (0..threads).map(|_| channel::<Vec<StructOp>>()).unzip();
        let (reply_txs, reply_rxs): (Vec<_>, Vec<_>) =
            (0..threads).map(|_| channel::<Reply>()).unzip();
        for (me, ((jobs_rx, ops_rx), reply_tx)) in
            job_rxs.into_iter().zip(ops_rxs).zip(reply_txs).enumerate()
        {
            let h = WorkerHandle {
                program,
                ctxs: &ctxs,
                pool: &pool,
                me,
                threads,
                traced,
                jobs: jobs_rx,
                ops_in: ops_rx,
                replies: reply_tx,
                peers: ops_txs.clone(),
            };
            scope.spawn(move || worker(h));
        }
        // Workers hold the only long-lived ops senders; nobody ever
        // *blocks* on an ops channel, so the sender cycle between
        // workers cannot deadlock the scope's implicit join.
        drop(ops_txs);
        let d = Driver {
            ctxs: &ctxs,
            pool: &pool,
            fuel,
            crit,
            job_txs,
            reply_rxs,
        };
        // `d` owns the job senders; dropping it on return hangs up the
        // workers.
        drive(&d, sink, wave)
    })
}

/// Coordinator-side handles for one run.
struct Driver<'a> {
    ctxs: &'a SharedContexts,
    pool: &'a StealPool,
    fuel: u64,
    /// `Some` under [`SchedPolicy::Crit`]: the wave is stably reordered
    /// by descending criticality *before* wave indices are assigned.
    crit: Option<CritMap>,
    job_txs: Vec<Sender<Job>>,
    reply_rxs: Vec<Receiver<Reply>>,
}

/// The coordinator's wave loop. See the module docs for the phase plan.
fn drive(
    d: &Driver<'_>,
    sink: Option<SharedSink>,
    mut wave: Vec<Token>,
) -> Result<EmuResult, ExecError> {
    const DEAD: &str = "emulator worker thread terminated unexpectedly";
    let threads = d.job_txs.len();
    let traced = sink.is_some();
    let trace = |now: Cycle, ev: &TraceEvent| {
        if let Some(s) = &sink {
            s.borrow_mut().record(now, ev);
        }
    };

    let mut outputs: HashMap<u32, Value> = HashMap::new();
    let mut profile: Vec<usize> = Vec::new();
    let mut instructions: u64 = 0;
    let mut alu_ops: u64 = 0;
    let mut peak_matching: usize = 0;
    let mut waiting_total: usize = 0;
    let mut peak_deferred: usize = 0;
    let mut deferred_by_worker = vec![0usize; threads];
    let mut istore_immediate: u64 = 0;
    let mut istore_deferred: u64 = 0;
    let mut istore_writes: u64 = 0;
    let mut next_struct_id: u32 = 0;
    let mut now = Cycle::ZERO;

    while !wave.is_empty() {
        let wlen = wave.len();
        d.pool.reset();

        // Criticality scheduling happens *here*, before wave indices
        // exist: the stable sort (ties keep arrival order) makes the
        // reordered wave a pure function of the graph and the previous
        // wave, and everything downstream — sharding, absorption,
        // occupancy replay, the index-ordered merge — runs on the
        // post-sort indices. That is why a `Crit` run is bit-identical
        // to the sequential backend's at every thread count.
        if let Some(crit) = &d.crit {
            wave.sort_by_key(|t| std::cmp::Reverse(crit.criticality(t.tag)));
        }

        // Phase 1: shard the wave's tokens by activity name. Every
        // worker gets its (possibly empty) slice — workers with little
        // to absorb join the wave as thieves.
        let mut parts: Vec<Vec<(u32, Token)>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, t) in wave.into_iter().enumerate() {
            parts[worker_of(t.tag, threads)].push((i as u32, t));
        }
        for (w, part) in parts.into_iter().enumerate() {
            d.job_txs[w].send(Job::Wave(part)).expect(DEAD);
        }
        let mut deltas: Vec<Option<isize>> = vec![None; wlen];
        let mut fires: Vec<Option<FireOut>> = (0..wlen).map(|_| None).collect();
        let mut first_err: Option<(u32, ExecError)> = None;
        let mut any_ops = false;
        let mut steal_log: Vec<(u32, u32, u64)> = Vec::new();
        for (w, rx) in d.reply_rxs.iter().enumerate() {
            let Reply::Wave(rep) = rx.recv().expect(DEAD) else {
                unreachable!("struct reply outside the structure phase");
            };
            for (i, delta) in rep.deltas {
                deltas[i as usize] = Some(delta);
            }
            for (i, f) in rep.fires {
                fires[i as usize] = Some(f);
            }
            if let Some((i, e)) = rep.err {
                if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_err = Some((i, e));
                }
            }
            any_ops |= rep.has_ops;
            for (victim, moved) in rep.steals {
                steal_log.push((w as u32, victim, moved));
            }
        }

        // Phase 2: walk the records in wave order — assign structure
        // ids in firing order and find the fuel crossing. (Unlike the
        // original protocol there is nothing to execute and no lock to
        // take here: workers already fired everything.)
        struct Slot {
            index: u32,
            fired: FireOut,
            alloc_tokens: Vec<Token>,
        }
        let mut merged: Vec<(isize, Option<usize>)> = Vec::with_capacity(wlen);
        let mut slots: Vec<Slot> = Vec::new();
        let mut creates: Vec<Vec<(u32, usize)>> = (0..threads).map(|_| Vec::new()).collect();
        let mut fuel_idx: Option<u32> = None;
        for i in 0..wlen {
            if first_err.as_ref().is_some_and(|(j, _)| i as u32 >= *j) {
                break;
            }
            let delta = deltas[i].expect("every token before the first error has a record");
            let Some(mut fired) = fires[i].take() else {
                merged.push((delta, None));
                continue;
            };
            // The sequential backend checks the budget after every
            // firing; record where this wave would cross it.
            if fuel_idx.is_none() && instructions + slots.len() as u64 + 1 > d.fuel {
                fuel_idx = Some(i as u32);
            }
            let mut alloc_tokens: Vec<Token> = Vec::new();
            if let Some((len, dests)) = fired.alloc.take() {
                let id = next_struct_id;
                next_struct_id += 1;
                creates[shard_of(id, threads)].push((id, len));
                let p = Value::Ptr(StructRef {
                    id,
                    len: len as u32,
                });
                for (rtag, port) in dests {
                    alloc_tokens.push(Token::new(rtag, port, p));
                }
            }
            merged.push((delta, Some(slots.len())));
            slots.push(Slot {
                index: i as u32,
                fired,
                alloc_tokens,
            });
        }

        // Phase 3: tell the shards to apply the batches peers flushed to
        // them (plus this wave's creates), cut at the first error.
        let cut = first_err.as_ref().map_or(u32::MAX, |(j, _)| *j);
        let need_struct = any_ops || creates.iter().any(|c| !c.is_empty());
        let mut op_outs: Vec<Option<OpOut>> = (0..wlen).map(|_| None).collect();
        if need_struct {
            for (w, c) in creates.iter_mut().enumerate() {
                d.job_txs[w]
                    .send(Job::Struct {
                        now,
                        creates: std::mem::take(c),
                        cut,
                    })
                    .expect(DEAD);
            }
            for (w, rx) in d.reply_rxs.iter().enumerate() {
                let Reply::Struct(rep) = rx.recv().expect(DEAD) else {
                    unreachable!("wave reply inside the structure phase");
                };
                for o in rep.outs {
                    let i = o.index as usize;
                    op_outs[i] = Some(o);
                }
                if let Some((i, e)) = rep.err {
                    if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                        first_err = Some((i, e));
                    }
                }
                deferred_by_worker[w] = rep.deferred_outstanding;
                istore_immediate += rep.immediate;
                istore_deferred += rep.deferred;
                istore_writes += rep.writes;
            }
        }

        // Error precedence, exactly as the sequential control flow has
        // it: the budget check runs *after* a successful firing, so an
        // error at firing index <= the crossing index wins.
        match (first_err.take(), fuel_idx) {
            (Some((ei, e)), Some(fi)) => {
                return Err(if ei <= fi { e } else { ExecError::OutOfFuel });
            }
            (Some((_, e)), None) => return Err(e),
            (None, Some(_)) => return Err(ExecError::OutOfFuel),
            (None, None) => {}
        }

        // Phase 4: deterministic merge — replay the wave in index order,
        // reconstructing counters, traces and the next wave exactly as
        // the sequential backend builds them.
        let fired_count = slots.len();
        let mut next: Vec<Token> = Vec::new();
        for (delta, slot_idx) in merged {
            trace(now, &TraceEvent::TokenConsume { pe: 0 });
            waiting_total = (waiting_total as isize + delta) as usize;
            peak_matching = peak_matching.max(waiting_total);
            let Some(si) = slot_idx else {
                trace(
                    now,
                    &TraceEvent::MatchWait {
                        pe: 0,
                        occupancy: waiting_total as u64,
                    },
                );
                continue;
            };
            let slot = &mut slots[si];
            instructions += 1;
            if slot.fired.is_alu {
                alu_ops += 1;
            }
            trace(
                now,
                &TraceEvent::MatchFire {
                    pe: 0,
                    alu: slot.fired.is_alu,
                    busy: 0,
                },
            );
            if let Some((s, v)) = slot.fired.output.take() {
                outputs.insert(s, v);
            }
            let mut emitted = slot.fired.tokens.len();
            next.append(&mut slot.fired.tokens);
            if let Some(op) = op_outs[slot.index as usize].as_mut() {
                if let Some(sk) = &sink {
                    op.traces.replay_into(sk);
                }
                emitted += op.tokens.len();
                next.append(&mut op.tokens);
            }
            emitted += slot.alloc_tokens.len();
            next.append(&mut slot.alloc_tokens);
            if traced {
                for _ in 0..emitted {
                    trace(now, &TraceEvent::TokenEmit { pe: 0 });
                }
            }
        }

        // Scheduling annotations: after the wave's semantic events,
        // before its WaveEnd.
        if traced {
            for (by, from, moved) in steal_log {
                trace(
                    now,
                    &TraceEvent::WorkSteal {
                        pe: by,
                        from,
                        moved,
                    },
                );
            }
        }

        peak_deferred = peak_deferred.max(deferred_by_worker.iter().sum());
        if fired_count > 0 {
            profile.push(fired_count);
            trace(
                now,
                &TraceEvent::WaveEnd {
                    fired: fired_count as u64,
                },
            );
            now = now.saturating_add(Cycle(1));
        }
        wave = next;
    }

    let stranded = waiting_total + deferred_by_worker.iter().sum::<usize>();
    if stranded > 0 {
        return Err(ExecError::Deadlock { stranded });
    }
    trace(now, &TraceEvent::Halt { in_flight: 0 });

    Ok(EmuResult {
        outputs,
        instructions,
        alu_ops,
        waves: profile.len() as u64,
        profile,
        contexts: d.ctxs.allocated(),
        peak_matching,
        peak_deferred,
        istore_immediate,
        istore_deferred,
        istore_writes,
    })
}

/// Everything one worker needs for the whole run.
struct WorkerHandle<'a> {
    program: &'a Program,
    ctxs: &'a SharedContexts,
    pool: &'a StealPool,
    me: usize,
    threads: usize,
    traced: bool,
    jobs: Receiver<Job>,
    /// Structure-op batches peers flushed to this shard. Drained (never
    /// blocked on) when the coordinator starts the structure phase — by
    /// then every batch is already enqueued, because peers flush before
    /// replying and the coordinator waits for all replies.
    ops_in: Receiver<Vec<StructOp>>,
    replies: Sender<Reply>,
    /// The ops channels of all workers (index = owning shard).
    peers: Vec<Sender<Vec<StructOp>>>,
}

/// One worker: owns a waiting–matching shard, an I-structure shard and a
/// context-id lease for the whole run, draining jobs until the
/// coordinator hangs up.
fn worker(h: WorkerHandle<'_>) {
    let mut waiting = MatchingStore::new();
    let mut shard: IStructureShard<Value, (ActivityName, Port)> = IStructureShard::new();
    let mut wctx = h.ctxs.handle();
    let mut own_ops: Vec<StructOp> = Vec::new();
    while let Ok(job) = h.jobs.recv() {
        let reply = match job {
            Job::Wave(tokens) => {
                let (rep, own) = run_wave(&h, &mut waiting, &mut wctx, tokens);
                own_ops = own;
                Reply::Wave(rep)
            }
            Job::Struct { now, creates, cut } => {
                let mut ops = std::mem::take(&mut own_ops);
                for mut batch in h.ops_in.try_iter() {
                    ops.append(&mut batch);
                }
                ops.retain(|o| o.index < cut);
                ops.sort_unstable_by_key(|o| o.index);
                Reply::Struct(apply_struct_ops(&mut shard, now, creates, ops, h.traced))
            }
        };
        if h.replies.send(reply).is_err() {
            return;
        }
    }
}

/// Per-wave worker-local execution state.
struct ExecState {
    fires: Vec<(u32, FireOut)>,
    /// Structure ops buffered per owning shard, flushed once per peer at
    /// the end of the wave.
    opbufs: Vec<Vec<StructOp>>,
    err: Option<(u32, ExecError)>,
    steals: Vec<(u32, u64)>,
}

/// Worker side of a wave: absorb the slice in wave order, publish the
/// enabled firings, then execute (own and stolen) firings until the
/// wave's enabled set is globally exhausted. Flushes this worker's
/// structure-op batches to their owning shards before returning; the
/// owner's own batch is returned for local application.
fn run_wave(
    h: &WorkerHandle<'_>,
    waiting: &mut MatchingStore,
    wctx: &mut WorkerCtx<'_>,
    tokens: Vec<(u32, Token)>,
) -> (WaveReply, Vec<StructOp>) {
    let mut deltas = Vec::with_capacity(tokens.len());
    let mut err: Option<(u32, ExecError)> = None;
    let mut ready: Vec<Ready> = Vec::new();
    for (index, token) in tokens {
        let before = waiting.len() as isize;
        match absorb(h.program, waiting, token) {
            Ok(absorbed) => {
                deltas.push((index, waiting.len() as isize - before));
                if let Some((tag, operands)) = absorbed {
                    ready.push(Ready {
                        index,
                        tag,
                        operands,
                    });
                }
            }
            Err(e) => {
                err = Some((index, e));
                break;
            }
        }
    }

    let mut exec = ExecState {
        fires: Vec::new(),
        opbufs: (0..h.threads).map(|_| Vec::new()).collect(),
        err,
        steals: Vec::new(),
    };

    if h.threads == 1 {
        // Single worker: nothing to steal, skip the shared pool.
        for r in ready {
            exec_one(h, wctx, r, &mut exec);
        }
    } else {
        let n = ready.len();
        if n > 0 {
            let mut q = h.pool.queues[h.me].lock().expect("steal queue poisoned");
            q.extend(ready);
            h.pool.loads[h.me].store(q.len(), Ordering::Relaxed);
            drop(q);
            h.pool.published.fetch_add(n, Ordering::SeqCst);
        }
        h.pool.absorb_done.fetch_add(1, Ordering::SeqCst);
        execute_pool(h, wctx, &mut exec);
    }

    let has_ops = exec.opbufs.iter().any(|b| !b.is_empty());
    let mut own = Vec::new();
    for (w, buf) in exec.opbufs.drain(..).enumerate() {
        if w == h.me {
            own = buf;
        } else if !buf.is_empty() {
            // A send can only fail during teardown, when the batch no
            // longer matters.
            let _ = h.peers[w].send(buf);
        }
    }
    (
        WaveReply {
            deltas,
            fires: exec.fires,
            err: exec.err,
            has_ops,
            steals: exec.steals,
        },
        own,
    )
}

/// The shared execution phase of one wave: drain the own queue (a batch
/// per lock acquisition), then steal from the most-loaded peer, until
/// every published firing of the wave has been executed by someone.
fn execute_pool(h: &WorkerHandle<'_>, wctx: &mut WorkerCtx<'_>, exec: &mut ExecState) {
    let pool = h.pool;
    let mut batch: Vec<Ready> = Vec::new();
    loop {
        {
            let mut q = pool.queues[h.me].lock().expect("steal queue poisoned");
            let take = q.len().min(DRAIN_BATCH);
            batch.extend(q.drain(..take));
            pool.loads[h.me].store(q.len(), Ordering::Relaxed);
        }
        if !batch.is_empty() {
            for r in batch.drain(..) {
                exec_one(h, wctx, r, exec);
                pool.executed.fetch_add(1, Ordering::SeqCst);
            }
            continue;
        }
        if pool.absorb_done.load(Ordering::SeqCst) == h.threads
            && pool.executed.load(Ordering::SeqCst) == pool.published.load(Ordering::SeqCst)
        {
            return;
        }
        let victim = (0..h.threads)
            .filter(|&w| w != h.me)
            .max_by_key(|&w| pool.loads[w].load(Ordering::Relaxed))
            .filter(|&w| pool.loads[w].load(Ordering::Relaxed) > 0);
        if let Some(v) = victim {
            {
                let mut q = pool.queues[v].lock().expect("steal queue poisoned");
                let keep = q.len() / 2;
                batch.extend(q.drain(keep..));
                pool.loads[v].store(q.len(), Ordering::Relaxed);
            }
            if !batch.is_empty() {
                exec.steals.push((v as u32, batch.len() as u64));
                for r in batch.drain(..) {
                    exec_one(h, wctx, r, exec);
                    pool.executed.fetch_add(1, Ordering::SeqCst);
                }
                continue;
            }
        }
        std::thread::yield_now();
    }
}

/// Executes one enabled firing on this worker (its owner or a thief):
/// `D`/`Apply` allocate from the worker's context lease; `Fetch`/`Store`
/// actions are buffered for their owning shard; `Alloc` rides back to
/// the coordinator for dense id assignment.
fn exec_one(h: &WorkerHandle<'_>, wctx: &mut WorkerCtx<'_>, r: Ready, exec: &mut ExecState) {
    let Ready {
        index,
        tag,
        operands,
    } = r;
    let instr = h
        .program
        .block(tag.c)
        .and_then(|b| b.instr(tag.s))
        .expect("absorb resolved the instruction");
    match execute(h.program, wctx, tag, instr, &operands) {
        Ok(mut eff) => {
            let mut alloc = None;
            match eff.action.take() {
                None => {}
                Some(StructAction::Alloc { len, dests }) => alloc = Some((len, dests)),
                Some(action @ StructAction::Fetch { .. })
                | Some(action @ StructAction::Store { .. }) => {
                    let ptr = match &action {
                        StructAction::Fetch { ptr, .. } | StructAction::Store { ptr, .. } => *ptr,
                        StructAction::Alloc { .. } => unreachable!(),
                    };
                    exec.opbufs[shard_of(ptr.id, h.threads)].push(StructOp { index, tag, action });
                }
            }
            exec.fires.push((
                index,
                FireOut {
                    is_alu: eff.is_alu,
                    tokens: eff.tokens,
                    output: eff.output,
                    alloc,
                },
            ));
        }
        Err(e) => {
            if exec.err.as_ref().is_none_or(|(j, _)| index < *j) {
                exec.err = Some((index, e));
            }
        }
    }
}

pub(crate) fn dangling(tag: ActivityName, ptr: StructRef) -> ExecError {
    ExecError::BadTarget {
        activity: format!("{tag} (dangling {ptr:?})"),
    }
}

/// Worker side of the structure phase: register this wave's allocations
/// owned by the shard, then apply fetches/stores in wave order,
/// mirroring the sequential backend's inline handling (including its
/// trace event order, buffered for coordinator replay).
fn apply_struct_ops(
    shard: &mut IStructureShard<Value, (ActivityName, Port)>,
    now: Cycle,
    creates: Vec<(u32, usize)>,
    ops: Vec<StructOp>,
    traced: bool,
) -> StructReply {
    for (id, len) in creates {
        shard.create(id, len);
    }
    let mut outs = Vec::with_capacity(ops.len());
    let mut err = None;
    let mut immediate = 0u64;
    let mut deferred = 0u64;
    let mut writes = 0u64;
    for op in ops {
        match apply_one(
            shard,
            op,
            now,
            traced,
            &mut immediate,
            &mut deferred,
            &mut writes,
        ) {
            Ok(out) => outs.push(out),
            Err((i, e)) => {
                err = Some((i, e));
                break;
            }
        }
    }
    StructReply {
        outs,
        err,
        deferred_outstanding: shard.deferred_outstanding(),
        immediate,
        deferred,
        writes,
    }
}

/// Applies one fetch/store to its owning shard, mirroring the
/// sequential backend's inline handling — tokens and trace events come
/// back in the exact sequential order. Shared with the relaxed backend
/// (which passes `index = 0`: it has no wave order to preserve).
pub(crate) fn apply_one(
    shard: &mut IStructureShard<Value, (ActivityName, Port)>,
    op: StructOp,
    now: Cycle,
    traced: bool,
    immediate: &mut u64,
    deferred: &mut u64,
    writes: &mut u64,
) -> Result<OpOut, (u32, ExecError)> {
    let StructOp { index, tag, action } = op;
    let mut out = OpOut {
        index,
        tokens: Vec::new(),
        traces: EventBuffer::new(),
    };
    let fail = |e: ExecError| (index, e);
    match action {
        StructAction::Alloc { .. } => {
            unreachable!("allocations are resolved on the coordinator")
        }
        StructAction::Fetch { ptr, idx, dests } => {
            for (rtag, port) in dests {
                let before = if traced {
                    shard
                        .store(ptr.id)
                        .ok_or_else(|| fail(dangling(tag, ptr)))?
                        .presence(Addr(idx))
                        .map_err(|e| fail(e.into()))?
                } else {
                    Presence::Empty
                };
                let outcome = shard
                    .read(ptr.id, Addr(idx), (rtag, port))
                    .ok_or_else(|| fail(dangling(tag, ptr)))?
                    .map_err(|e| fail(e.into()))?;
                match outcome {
                    ReadOutcome::Value(v) => {
                        *immediate += 1;
                        out.tokens.push(Token::new(rtag, port, v));
                        if traced {
                            out.traces.push(
                                now,
                                TraceEvent::IStoreRead {
                                    module: ptr.id,
                                    immediate: true,
                                },
                            );
                        }
                    }
                    ReadOutcome::Deferred => {
                        *deferred += 1;
                        if traced {
                            out.traces.push(
                                now,
                                TraceEvent::IStoreRead {
                                    module: ptr.id,
                                    immediate: false,
                                },
                            );
                            let depth = shard
                                .store(ptr.id)
                                .expect("structure present")
                                .deferred_count(Addr(idx))
                                .map_err(|e| fail(e.into()))?
                                as u64;
                            out.traces.push(
                                now,
                                TraceEvent::DeferEnqueue {
                                    module: ptr.id,
                                    depth,
                                },
                            );
                            if before != Presence::Deferred {
                                out.traces.push(
                                    now,
                                    TraceEvent::Presence {
                                        module: ptr.id,
                                        from: before.as_trace(),
                                        to: PresenceState::Deferred,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
        StructAction::Store {
            ptr,
            idx,
            value,
            dests,
        } => {
            let before = if traced {
                shard
                    .store(ptr.id)
                    .ok_or_else(|| fail(dangling(tag, ptr)))?
                    .presence(Addr(idx))
                    .map_err(|e| fail(e.into()))?
            } else {
                Presence::Empty
            };
            // Released readers stream straight into the reply's token
            // buffer (the packed store's zero-allocation release path).
            let tokens = &mut out.tokens;
            let released = shard
                .write_with(ptr.id, Addr(idx), value, |(rtag, port)| {
                    tokens.push(Token::new(rtag, port, value));
                })
                .ok_or_else(|| fail(dangling(tag, ptr)))?
                .map_err(|e| fail(e.into()))?;
            *writes += 1;
            if traced {
                out.traces
                    .push(now, TraceEvent::IStoreWrite { module: ptr.id });
                out.traces.push(
                    now,
                    TraceEvent::Presence {
                        module: ptr.id,
                        from: before.as_trace(),
                        to: PresenceState::Present,
                    },
                );
                if released > 0 {
                    out.traces.push(
                        now,
                        TraceEvent::DeferRelease {
                            module: ptr.id,
                            released: released as u64,
                        },
                    );
                }
            }
            for (rtag, port) in dests {
                out.tokens.push(Token::new(rtag, port, Value::Unit));
            }
        }
    }
    Ok(out)
}
