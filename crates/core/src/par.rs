//! The parallel wave-execution backend of the [`Emulator`](crate::Emulator).
//!
//! The paper's group built a 32–128-processor emulation facility (Fig
//! 3-1) because measuring the parallelism profiles of *large* programs on
//! one processor was too slow. This module is that facility for the
//! reproduction: it executes the emulator's waves across a pool of scoped
//! worker threads while producing an [`EmuResult`] that is **bit-identical**
//! to the sequential backend's, for every program.
//!
//! # How determinism is preserved
//!
//! Within one wave the sequential backend processes tokens in wave order:
//! absorb into the waiting–matching store (updating the running occupancy
//! peak per token), fire if enabled, apply any I-structure action inline,
//! and append the firing's outputs to the next wave. The parallel backend
//! reproduces that order exactly from unordered parallel work:
//!
//! - **Sharded matching.** Each worker owns the waiting–matching shard
//!   for the activity names that hash to it, so a token's absorption is a
//!   pure function of its shard's state. Workers process their tokens in
//!   ascending wave index and report `(index, occupancy delta, outcome)`
//!   records; the coordinator replays the deltas in index order, which
//!   reconstructs the exact running occupancy — and thus `peak_matching` —
//!   of a sequential run.
//! - **Coordinator-side context allocation.** `D` and `Apply` are the
//!   only opcodes that allocate contexts. Workers hand them back
//!   unexecuted; the coordinator fires them in wave-index order under a
//!   write lock, so context ids (and hence every downstream activity
//!   name) match the sequential backend. All other opcodes execute on the
//!   workers under a read lock — `DInv`/`Return` only read context
//!   records created in strictly earlier waves.
//! - **Sharded structures.** Allocation ids are assigned by the
//!   coordinator in firing order; fetches and stores are routed to the
//!   shard that owns the structure and applied there in firing order.
//!   Operations on distinct structures commute, so per-shard program
//!   order reproduces the sequential cell states, released-reader orders
//!   and immediate/deferred counts.
//! - **Deterministic merge.** The next wave is assembled strictly in
//!   firing order: each firing's direct output tokens, then its structure
//!   action's tokens — the exact append order of the sequential `fire`.
//!   Trace events are synthesized (or replayed from worker-filled
//!   [`EventBuffer`]s) in the same order, so order-sensitive sinks
//!   observe the sequential event stream.
//! - **Error precedence.** The first error in wave-index order wins, and
//!   an `OutOfFuel` at firing *q* loses to any error at a firing ≤ *q* —
//!   exactly the sequential control flow.
//!
//! `loop_bound` (k-bounded loops) forces the sequential backend: its
//! holding-pen scheduling is a global, order-sensitive fixpoint that
//! would serialize the workers anyway.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::RwLock;

use ttda_mem::{shard_of, Addr, IStructureShard, Presence, ReadOutcome};
use ttda_sim::Cycle;
use ttda_trace::{EventBuffer, PresenceState, SharedSink, TraceEvent};

use crate::context::ContextManager;
use crate::emu::EmuResult;
use crate::exec::{absorb, allocates_context, execute, execute_ro, StructAction};
use crate::graph::Program;
use crate::matching::{MatchingStore, Operands};
use crate::tag::{ActivityName, Iter, Port, Token};
use crate::value::{StructRef, Value};
use crate::ExecError;

/// Stafford's mix13 finalizer — the same mixer the timed machine uses to
/// spread activity names over PEs. Deterministic across runs/platforms.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// The worker whose waiting–matching shard owns `tag`.
///
/// Deliberately *not* the hash [`crate::matching`] uses for bucket
/// placement: this one mixes a lossy 48-bit packing, the store folds the
/// full 128-bit name through fibonacci multiplies. If they agreed, all
/// keys owned by one shard would collide into one probe chain of that
/// shard's table (`matching::tests::shard_resident_keys_spread_over_buckets`
/// guards the independence).
pub(crate) fn worker_of(tag: ActivityName, workers: usize) -> usize {
    let packed =
        (tag.u.0 as u64) << 48 | (tag.c.0 as u64) << 36 | (tag.s.0 as u64) << 16 | tag.i.0 as u64;
    (mix(packed) % workers as u64) as usize
}

/// A structure operation routed to the shard that owns the structure.
struct StructOp {
    /// Wave index of the firing that requested the operation.
    index: u32,
    /// The firing's activity name (for error rendering).
    tag: ActivityName,
    action: StructAction,
}

/// Work sent from the coordinator to one worker.
enum Job {
    /// Absorb (and where possible execute) this worker's slice of a
    /// wave, in ascending wave index.
    Wave(Vec<(u32, Token)>),
    /// Apply this worker's slice of the wave's structure operations, in
    /// ascending wave index. `creates` registers ids allocated this wave.
    Struct {
        now: Cycle,
        creates: Vec<(u32, usize)>,
        ops: Vec<StructOp>,
    },
}

/// Everything a worker-side firing produced.
struct FireOut {
    tag: ActivityName,
    is_alu: bool,
    tokens: Vec<Token>,
    output: Option<(u32, Value)>,
    action: Option<StructAction>,
}

/// What became of one absorbed token.
enum Outcome {
    /// Parked as a partial match.
    Parked,
    /// Enabled and executed on the worker.
    Fired(FireOut),
    /// Enabled, but the opcode allocates a context: the coordinator must
    /// execute it in wave order.
    NeedsCtx {
        tag: ActivityName,
        operands: Operands,
    },
}

/// Per-token record: wave index, waiting-store occupancy delta, outcome.
struct TokRec {
    index: u32,
    delta: isize,
    outcome: Outcome,
}

struct WaveReply {
    recs: Vec<TokRec>,
    err: Option<(u32, ExecError)>,
}

/// Tokens and trace events produced by one structure operation.
struct OpOut {
    index: u32,
    tokens: Vec<Token>,
    traces: EventBuffer,
}

struct StructReply {
    outs: Vec<OpOut>,
    err: Option<(u32, ExecError)>,
    /// Deferred reads outstanding in this worker's shard after the ops.
    deferred_outstanding: usize,
    immediate: u64,
    deferred: u64,
    writes: u64,
}

enum Reply {
    Wave(WaveReply),
    Struct(StructReply),
}

/// Entry point: the parallel equivalent of `Emulator::submit`. `fuel`
/// is the already-resolved batch budget (machine fuel merged with the
/// jobs' fuel shares by the caller).
pub(crate) fn submit(
    program: &Program,
    jobs: &[crate::machine::Job],
    threads: usize,
    fuel: u64,
    sink: Option<SharedSink>,
) -> Result<EmuResult, ExecError> {
    debug_assert!(threads >= 2, "parallel backend needs at least two workers");
    let mut ctx = ContextManager::new(program.main);
    let mut wave: Vec<Token> = Vec::new();
    for job in jobs {
        let (block_id, inputs) = (&job.block, &job.inputs);
        let block = program.block(*block_id).ok_or(ExecError::BadTarget {
            activity: block_id.to_string(),
        })?;
        if inputs.len() != block.params.len() {
            return Err(ExecError::InputArity {
                expected: block.params.len(),
                got: inputs.len(),
            });
        }
        let root = ctx.new_root(*block_id);
        for (k, v) in inputs.iter().enumerate() {
            wave.push(Token::new(
                ActivityName {
                    u: root,
                    c: *block_id,
                    s: block.params[k],
                    i: Iter::ONE,
                },
                Port(0),
                *v,
            ));
        }
    }
    if let Some(s) = &sink {
        let mut s = s.borrow_mut();
        for _ in 0..wave.len() {
            s.record(Cycle::ZERO, &TraceEvent::TokenEmit { pe: 0 });
        }
    }

    let ctx_lock = RwLock::new(ctx);
    let traced = sink.is_some();
    std::thread::scope(|scope| {
        let mut job_txs: Vec<Sender<Job>> = Vec::with_capacity(threads);
        let mut reply_rxs: Vec<Receiver<Reply>> = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (jtx, jrx) = channel::<Job>();
            let (rtx, rrx) = channel::<Reply>();
            let ctx_ref = &ctx_lock;
            scope.spawn(move || worker(program, ctx_ref, traced, jrx, rtx));
            job_txs.push(jtx);
            reply_rxs.push(rrx);
        }
        // `drive` owns the senders; dropping them on return hangs up the
        // workers, so the scope's implicit join cannot deadlock.
        drive(program, &ctx_lock, fuel, sink, wave, job_txs, reply_rxs)
    })
}

/// The coordinator's wave loop. See the module docs for the phase plan.
fn drive(
    program: &Program,
    ctx_lock: &RwLock<ContextManager>,
    fuel: u64,
    sink: Option<SharedSink>,
    mut wave: Vec<Token>,
    job_txs: Vec<Sender<Job>>,
    reply_rxs: Vec<Receiver<Reply>>,
) -> Result<EmuResult, ExecError> {
    const DEAD: &str = "emulator worker thread terminated unexpectedly";
    let threads = job_txs.len();
    let traced = sink.is_some();
    let trace = |now: Cycle, ev: &TraceEvent| {
        if let Some(s) = &sink {
            s.borrow_mut().record(now, ev);
        }
    };

    let mut outputs: HashMap<u32, Value> = HashMap::new();
    let mut profile: Vec<usize> = Vec::new();
    let mut instructions: u64 = 0;
    let mut alu_ops: u64 = 0;
    let mut peak_matching: usize = 0;
    let mut waiting_total: usize = 0;
    let mut peak_deferred: usize = 0;
    let mut deferred_by_worker = vec![0usize; threads];
    let mut istore_immediate: u64 = 0;
    let mut istore_deferred: u64 = 0;
    let mut istore_writes: u64 = 0;
    let mut next_struct_id: u32 = 0;
    let mut now = Cycle::ZERO;

    while !wave.is_empty() {
        let wlen = wave.len();

        // Phase 1: shard the wave's tokens by activity name and let each
        // worker absorb + (where possible) execute its slice.
        let mut parts: Vec<Vec<(u32, Token)>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, t) in wave.into_iter().enumerate() {
            parts[worker_of(t.tag, threads)].push((i as u32, t));
        }
        let mut wave_sent = vec![false; threads];
        for (w, part) in parts.into_iter().enumerate() {
            if !part.is_empty() {
                job_txs[w].send(Job::Wave(part)).expect(DEAD);
                wave_sent[w] = true;
            }
        }
        let mut recs: Vec<Option<TokRec>> = (0..wlen).map(|_| None).collect();
        let mut first_err: Option<(u32, ExecError)> = None;
        for (w, rx) in reply_rxs.iter().enumerate() {
            if !wave_sent[w] {
                continue;
            }
            let Reply::Wave(rep) = rx.recv().expect(DEAD) else {
                unreachable!("struct reply outside the structure phase");
            };
            for r in rep.recs {
                let i = r.index as usize;
                recs[i] = Some(r);
            }
            if let Some((i, e)) = rep.err {
                if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_err = Some((i, e));
                }
            }
        }

        // Phase 2: walk the records in wave order — fire the
        // context-allocating instructions, assign structure ids, route
        // structure ops to their shards, and find the fuel crossing.
        struct Slot {
            index: u32,
            fired: FireOut,
            alloc_tokens: Vec<Token>,
        }
        let mut merged: Vec<(isize, Option<usize>)> = Vec::with_capacity(wlen);
        let mut slots: Vec<Slot> = Vec::new();
        let mut creates: Vec<Vec<(u32, usize)>> = (0..threads).map(|_| Vec::new()).collect();
        let mut ops: Vec<Vec<StructOp>> = (0..threads).map(|_| Vec::new()).collect();
        let mut fuel_idx: Option<u32> = None;
        {
            let mut ctx = ctx_lock.write().expect("context lock poisoned");
            for (i, rec) in recs.into_iter().enumerate() {
                if first_err.as_ref().is_some_and(|(j, _)| i as u32 >= *j) {
                    break;
                }
                let rec = rec.expect("every token before the first error has a record");
                let mut fired = match rec.outcome {
                    Outcome::Parked => {
                        merged.push((rec.delta, None));
                        continue;
                    }
                    Outcome::Fired(f) => f,
                    Outcome::NeedsCtx { tag, operands } => {
                        let instr = program
                            .block(tag.c)
                            .and_then(|b| b.instr(tag.s))
                            .expect("absorb resolved the instruction");
                        match execute(program, &mut ctx, tag, instr, &operands) {
                            Ok(eff) => FireOut {
                                tag,
                                is_alu: eff.is_alu,
                                tokens: eff.tokens,
                                output: eff.output,
                                action: eff.action,
                            },
                            Err(e) => {
                                first_err = Some((i as u32, e));
                                break;
                            }
                        }
                    }
                };
                // The sequential backend checks the budget after every
                // firing; record where this wave would cross it.
                if fuel_idx.is_none() && instructions + slots.len() as u64 + 1 > fuel {
                    fuel_idx = Some(i as u32);
                }
                let mut alloc_tokens: Vec<Token> = Vec::new();
                match fired.action.take() {
                    None => {}
                    Some(StructAction::Alloc { len, dests }) => {
                        let id = next_struct_id;
                        next_struct_id += 1;
                        creates[shard_of(id, threads)].push((id, len));
                        let p = Value::Ptr(StructRef {
                            id,
                            len: len as u32,
                        });
                        for (rtag, port) in dests {
                            alloc_tokens.push(Token::new(rtag, port, p));
                        }
                    }
                    Some(action @ StructAction::Fetch { .. })
                    | Some(action @ StructAction::Store { .. }) => {
                        let ptr = match &action {
                            StructAction::Fetch { ptr, .. } | StructAction::Store { ptr, .. } => {
                                *ptr
                            }
                            StructAction::Alloc { .. } => unreachable!(),
                        };
                        ops[shard_of(ptr.id, threads)].push(StructOp {
                            index: i as u32,
                            tag: fired.tag,
                            action,
                        });
                    }
                }
                merged.push((rec.delta, Some(slots.len())));
                slots.push(Slot {
                    index: i as u32,
                    fired,
                    alloc_tokens,
                });
            }
        }

        // Phase 3: ship the structure work to the owning shards.
        let mut struct_sent = vec![false; threads];
        for w in 0..threads {
            if creates[w].is_empty() && ops[w].is_empty() {
                continue;
            }
            job_txs[w]
                .send(Job::Struct {
                    now,
                    creates: std::mem::take(&mut creates[w]),
                    ops: std::mem::take(&mut ops[w]),
                })
                .expect(DEAD);
            struct_sent[w] = true;
        }
        let mut op_outs: Vec<Option<OpOut>> = (0..wlen).map(|_| None).collect();
        for (w, rx) in reply_rxs.iter().enumerate() {
            if !struct_sent[w] {
                continue;
            }
            let Reply::Struct(rep) = rx.recv().expect(DEAD) else {
                unreachable!("wave reply inside the structure phase");
            };
            for o in rep.outs {
                let i = o.index as usize;
                op_outs[i] = Some(o);
            }
            if let Some((i, e)) = rep.err {
                if first_err.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_err = Some((i, e));
                }
            }
            deferred_by_worker[w] = rep.deferred_outstanding;
            istore_immediate += rep.immediate;
            istore_deferred += rep.deferred;
            istore_writes += rep.writes;
        }

        // Error precedence, exactly as the sequential control flow has
        // it: the budget check runs *after* a successful firing, so an
        // error at firing index <= the crossing index wins.
        match (first_err.take(), fuel_idx) {
            (Some((ei, e)), Some(fi)) => {
                return Err(if ei <= fi { e } else { ExecError::OutOfFuel });
            }
            (Some((_, e)), None) => return Err(e),
            (None, Some(_)) => return Err(ExecError::OutOfFuel),
            (None, None) => {}
        }

        // Phase 4: deterministic merge — replay the wave in index order,
        // reconstructing counters, traces and the next wave exactly as
        // the sequential backend builds them.
        let fired_count = slots.len();
        let mut next: Vec<Token> = Vec::new();
        for (delta, slot_idx) in merged {
            trace(now, &TraceEvent::TokenConsume { pe: 0 });
            waiting_total = (waiting_total as isize + delta) as usize;
            peak_matching = peak_matching.max(waiting_total);
            let Some(si) = slot_idx else {
                trace(
                    now,
                    &TraceEvent::MatchWait {
                        pe: 0,
                        occupancy: waiting_total as u64,
                    },
                );
                continue;
            };
            let slot = &mut slots[si];
            instructions += 1;
            if slot.fired.is_alu {
                alu_ops += 1;
            }
            trace(
                now,
                &TraceEvent::MatchFire {
                    pe: 0,
                    alu: slot.fired.is_alu,
                    busy: 0,
                },
            );
            if let Some((s, v)) = slot.fired.output.take() {
                outputs.insert(s, v);
            }
            let mut emitted = slot.fired.tokens.len();
            next.append(&mut slot.fired.tokens);
            if let Some(op) = op_outs[slot.index as usize].as_mut() {
                if let Some(sk) = &sink {
                    op.traces.replay_into(sk);
                }
                emitted += op.tokens.len();
                next.append(&mut op.tokens);
            }
            emitted += slot.alloc_tokens.len();
            next.append(&mut slot.alloc_tokens);
            if traced {
                for _ in 0..emitted {
                    trace(now, &TraceEvent::TokenEmit { pe: 0 });
                }
            }
        }

        peak_deferred = peak_deferred.max(deferred_by_worker.iter().sum());
        if fired_count > 0 {
            profile.push(fired_count);
            trace(
                now,
                &TraceEvent::WaveEnd {
                    fired: fired_count as u64,
                },
            );
            now = now.saturating_add(Cycle(1));
        }
        wave = next;
    }

    let stranded = waiting_total + deferred_by_worker.iter().sum::<usize>();
    if stranded > 0 {
        return Err(ExecError::Deadlock { stranded });
    }
    trace(now, &TraceEvent::Halt { in_flight: 0 });

    let contexts = ctx_lock.read().expect("context lock poisoned").allocated();
    Ok(EmuResult {
        outputs,
        instructions,
        alu_ops,
        waves: profile.len() as u64,
        profile,
        contexts,
        peak_matching,
        peak_deferred,
        istore_immediate,
        istore_deferred,
        istore_writes,
    })
}

/// One worker: owns a waiting–matching shard and an I-structure shard
/// for the whole run, draining jobs until the coordinator hangs up.
fn worker(
    program: &Program,
    ctx_lock: &RwLock<ContextManager>,
    traced: bool,
    jobs: Receiver<Job>,
    replies: Sender<Reply>,
) {
    let mut waiting = MatchingStore::new();
    let mut shard: IStructureShard<Value, (ActivityName, Port)> = IStructureShard::new();
    while let Ok(job) = jobs.recv() {
        let reply = match job {
            Job::Wave(tokens) => {
                Reply::Wave(match_and_execute(program, ctx_lock, &mut waiting, tokens))
            }
            Job::Struct { now, creates, ops } => {
                Reply::Struct(apply_struct_ops(&mut shard, now, creates, ops, traced))
            }
        };
        if replies.send(reply).is_err() {
            return;
        }
    }
}

/// Worker side of a wave: absorb each token into this worker's shard in
/// wave order, executing enabled non-context-allocating instructions
/// under a shared context lock.
fn match_and_execute(
    program: &Program,
    ctx_lock: &RwLock<ContextManager>,
    waiting: &mut MatchingStore,
    tokens: Vec<(u32, Token)>,
) -> WaveReply {
    let ctx = ctx_lock.read().expect("context lock poisoned");
    let mut recs = Vec::with_capacity(tokens.len());
    let mut err = None;
    for (index, token) in tokens {
        let before = waiting.len() as isize;
        let absorbed = match absorb(program, waiting, token) {
            Ok(a) => a,
            Err(e) => {
                err = Some((index, e));
                break;
            }
        };
        let delta = waiting.len() as isize - before;
        let outcome = match absorbed {
            None => Outcome::Parked,
            Some((tag, operands)) => {
                let instr = program
                    .block(tag.c)
                    .and_then(|b| b.instr(tag.s))
                    .expect("absorb resolved the instruction");
                if allocates_context(&instr.op) {
                    Outcome::NeedsCtx { tag, operands }
                } else {
                    match execute_ro(&ctx, tag, instr, &operands) {
                        Ok(eff) => Outcome::Fired(FireOut {
                            tag,
                            is_alu: eff.is_alu,
                            tokens: eff.tokens,
                            output: eff.output,
                            action: eff.action,
                        }),
                        Err(e) => {
                            err = Some((index, e));
                            break;
                        }
                    }
                }
            }
        };
        recs.push(TokRec {
            index,
            delta,
            outcome,
        });
    }
    WaveReply { recs, err }
}

fn dangling(tag: ActivityName, ptr: StructRef) -> ExecError {
    ExecError::BadTarget {
        activity: format!("{tag} (dangling {ptr:?})"),
    }
}

/// Worker side of the structure phase: register this wave's allocations
/// owned by the shard, then apply fetches/stores in wave order,
/// mirroring the sequential backend's inline handling (including its
/// trace event order, buffered for coordinator replay).
fn apply_struct_ops(
    shard: &mut IStructureShard<Value, (ActivityName, Port)>,
    now: Cycle,
    creates: Vec<(u32, usize)>,
    ops: Vec<StructOp>,
    traced: bool,
) -> StructReply {
    for (id, len) in creates {
        shard.create(id, len);
    }
    let mut outs = Vec::with_capacity(ops.len());
    let mut err = None;
    let mut immediate = 0u64;
    let mut deferred = 0u64;
    let mut writes = 0u64;
    for op in ops {
        match apply_one(
            shard,
            op,
            now,
            traced,
            &mut immediate,
            &mut deferred,
            &mut writes,
        ) {
            Ok(out) => outs.push(out),
            Err((i, e)) => {
                err = Some((i, e));
                break;
            }
        }
    }
    StructReply {
        outs,
        err,
        deferred_outstanding: shard.deferred_outstanding(),
        immediate,
        deferred,
        writes,
    }
}

fn apply_one(
    shard: &mut IStructureShard<Value, (ActivityName, Port)>,
    op: StructOp,
    now: Cycle,
    traced: bool,
    immediate: &mut u64,
    deferred: &mut u64,
    writes: &mut u64,
) -> Result<OpOut, (u32, ExecError)> {
    let StructOp { index, tag, action } = op;
    let mut out = OpOut {
        index,
        tokens: Vec::new(),
        traces: EventBuffer::new(),
    };
    let fail = |e: ExecError| (index, e);
    match action {
        StructAction::Alloc { .. } => {
            unreachable!("allocations are resolved on the coordinator")
        }
        StructAction::Fetch { ptr, idx, dests } => {
            for (rtag, port) in dests {
                let before = if traced {
                    shard
                        .store(ptr.id)
                        .ok_or_else(|| fail(dangling(tag, ptr)))?
                        .presence(Addr(idx))
                        .map_err(|e| fail(e.into()))?
                } else {
                    Presence::Empty
                };
                let outcome = shard
                    .read(ptr.id, Addr(idx), (rtag, port))
                    .ok_or_else(|| fail(dangling(tag, ptr)))?
                    .map_err(|e| fail(e.into()))?;
                match outcome {
                    ReadOutcome::Value(v) => {
                        *immediate += 1;
                        out.tokens.push(Token::new(rtag, port, v));
                        if traced {
                            out.traces.push(
                                now,
                                TraceEvent::IStoreRead {
                                    module: ptr.id,
                                    immediate: true,
                                },
                            );
                        }
                    }
                    ReadOutcome::Deferred => {
                        *deferred += 1;
                        if traced {
                            out.traces.push(
                                now,
                                TraceEvent::IStoreRead {
                                    module: ptr.id,
                                    immediate: false,
                                },
                            );
                            let depth = shard
                                .store(ptr.id)
                                .expect("structure present")
                                .deferred_count(Addr(idx))
                                .map_err(|e| fail(e.into()))?
                                as u64;
                            out.traces.push(
                                now,
                                TraceEvent::DeferEnqueue {
                                    module: ptr.id,
                                    depth,
                                },
                            );
                            if before != Presence::Deferred {
                                out.traces.push(
                                    now,
                                    TraceEvent::Presence {
                                        module: ptr.id,
                                        from: before.as_trace(),
                                        to: PresenceState::Deferred,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
        StructAction::Store {
            ptr,
            idx,
            value,
            dests,
        } => {
            let before = if traced {
                shard
                    .store(ptr.id)
                    .ok_or_else(|| fail(dangling(tag, ptr)))?
                    .presence(Addr(idx))
                    .map_err(|e| fail(e.into()))?
            } else {
                Presence::Empty
            };
            // Released readers stream straight into the reply's token
            // buffer (the packed store's zero-allocation release path).
            let tokens = &mut out.tokens;
            let released = shard
                .write_with(ptr.id, Addr(idx), value, |(rtag, port)| {
                    tokens.push(Token::new(rtag, port, value));
                })
                .ok_or_else(|| fail(dangling(tag, ptr)))?
                .map_err(|e| fail(e.into()))?;
            *writes += 1;
            if traced {
                out.traces
                    .push(now, TraceEvent::IStoreWrite { module: ptr.id });
                out.traces.push(
                    now,
                    TraceEvent::Presence {
                        module: ptr.id,
                        from: before.as_trace(),
                        to: PresenceState::Present,
                    },
                );
                if released > 0 {
                    out.traces.push(
                        now,
                        TraceEvent::DeferRelease {
                            module: ptr.id,
                            released: released as u64,
                        },
                    );
                }
            }
            for (rtag, port) in dests {
                out.tokens.push(Token::new(rtag, port, Value::Unit));
            }
        }
    }
    Ok(out)
}
