//! Shared operational semantics for both execution engines.
//!
//! [`execute`] implements the instruction-fetch + ALU + output-section
//! behaviour of one enabled instruction, *independent of timing*: it
//! returns the tokens to emit and any I-structure action to perform. The
//! [`Emulator`](crate::Emulator) applies structure actions inline; the
//! [`TimedMachine`](crate::TimedMachine) turns them into `d=1` packets
//! that travel the network to I-structure storage. Keeping one copy of
//! the semantics guarantees the two engines can never disagree on *what*
//! a program computes, only on *when*.

use crate::context::{ContextKind, ContextOps};
use crate::graph::{Dest, DestBranch, Instruction, OpCode, Program};
use crate::matching::{Absorbed, MatchingStore, Operands, PortOutOfRange};
use crate::tag::{ActivityName, Iter, Port, Token};
use crate::value::{as_bool, as_int, as_ptr, StructRef, Value};
use crate::ExecError;

/// A pending reader / destination continuation: fully tagged token slots
/// awaiting a value.
pub(crate) type Continuation = Vec<(ActivityName, Port)>;

/// An I-structure operation requested by an instruction.
#[derive(Debug, Clone)]
pub(crate) enum StructAction {
    /// Allocate `len` cells; send the pointer to `dests`.
    Alloc {
        /// Element count.
        len: usize,
        /// Who receives the pointer.
        dests: Continuation,
    },
    /// Fetch element `idx` of `ptr`; deliver to `dests` (possibly
    /// deferred).
    Fetch {
        /// The structure.
        ptr: StructRef,
        /// Element index.
        idx: usize,
        /// Who receives the element.
        dests: Continuation,
    },
    /// Store `value` at element `idx` of `ptr`; then signal `dests`.
    Store {
        /// The structure.
        ptr: StructRef,
        /// Element index.
        idx: usize,
        /// The element value.
        value: Value,
        /// Who receives the unit completion signal.
        dests: Continuation,
    },
}

/// Everything one firing produces.
#[derive(Debug, Clone, Default)]
pub(crate) struct Effect {
    /// Ordinary (`d=0`) output tokens, fully tagged.
    pub tokens: Vec<Token>,
    /// At most one structure (`d=1`) action.
    pub action: Option<StructAction>,
    /// A program output, if the instruction was `Output`.
    pub output: Option<(u32, Value)>,
    /// Whether this firing counts as ALU work.
    pub is_alu: bool,
}

fn retag(tag: ActivityName, dests: &[Dest], value: Value, out: &mut Vec<Token>) {
    for d in dests {
        if d.when == DestBranch::Always {
            out.push(Token::new(
                ActivityName { s: d.instr, ..tag },
                d.port,
                value,
            ));
        }
    }
}

fn retag_branch(
    tag: ActivityName,
    dests: &[Dest],
    take_true: bool,
    value: Value,
    out: &mut Vec<Token>,
) {
    let want = if take_true {
        DestBranch::IfTrue
    } else {
        DestBranch::IfFalse
    };
    for d in dests {
        if d.when == want {
            out.push(Token::new(
                ActivityName { s: d.instr, ..tag },
                d.port,
                value,
            ));
        }
    }
}

fn continuation(tag: ActivityName, dests: &[Dest]) -> Continuation {
    dests
        .iter()
        .filter(|d| d.when == DestBranch::Always)
        .map(|d| (ActivityName { s: d.instr, ..tag }, d.port))
        .collect()
}

fn nonneg_index(tag: ActivityName, idx: i64) -> Result<usize, ExecError> {
    usize::try_from(idx).map_err(|_| ExecError::BadTarget {
        activity: format!("{tag} (negative i-structure index {idx})"),
    })
}

/// The waiting–matching section, shared by both engines: inserts a token
/// into `waiting`; returns the complete operand set when the target
/// instruction becomes enabled. Tokens for `nt = 1` instructions bypass
/// the store, as in Fig 2-3.
pub(crate) fn absorb(
    program: &Program,
    waiting: &mut MatchingStore,
    token: Token,
) -> Result<Option<(ActivityName, Operands)>, ExecError> {
    let instr = program
        .block(token.tag.c)
        .and_then(|b| b.instr(token.tag.s))
        .ok_or_else(|| ExecError::BadTarget {
            activity: token.tag.to_string(),
        })?;
    let arity = instr.op.arity();
    let literal = instr.literal;

    if instr.nt <= 1 && arity <= 1 {
        let v = match literal {
            Some((_, lv)) => lv,
            None => token.value,
        };
        return Ok(Some((token.tag, Operands::one(v))));
    }

    match waiting.absorb(token.tag, arity, literal, token.port, token.value) {
        Ok(Absorbed::Parked) => Ok(None),
        Ok(Absorbed::Enabled(operands)) => Ok(Some((token.tag, operands))),
        Err(PortOutOfRange) => Err(ExecError::BadTarget {
            activity: token.tag.to_string(),
        }),
    }
}

/// Executes one enabled instruction. See the module docs.
///
/// Only `D` and `Apply` *mutate* the context table (entering a loop or
/// a call); everything else at most reads it, via [`execute_ro`]. On
/// the parallel backends workers execute the mutating opcodes too,
/// drawing ids from leased blocks of a
/// [`crate::context::SharedContexts`] table — context id *values* then
/// differ from a sequential run, but they never escape an
/// [`EmuResult`](crate::EmuResult) (`contexts` is the semantic
/// allocation count, kept exact by the shared loop memo).
pub(crate) fn execute<C: ContextOps>(
    program: &Program,
    ctx: &mut C,
    tag: ActivityName,
    instr: &Instruction,
    ops: &[Value],
) -> Result<Effect, ExecError> {
    let mut eff = Effect {
        is_alu: instr.op.is_alu_work(),
        ..Effect::default()
    };
    match &instr.op {
        OpCode::D { loop_id } => {
            let inner = ctx.enter_loop(tag.u, tag.i, *loop_id, tag.c);
            let ntag = ActivityName {
                u: inner,
                i: Iter::ONE,
                ..tag
            };
            retag(ntag, &instr.dests, ops[0], &mut eff.tokens);
        }
        OpCode::Apply { callee, argc } => {
            let cb = program.block(*callee).ok_or(ExecError::BadTarget {
                activity: tag.to_string(),
            })?;
            let new_ctx = ctx.enter_call(tag.u, tag.i, tag.c, *callee, instr.dests.clone());
            for (k, &op) in ops.iter().enumerate().take(*argc as usize) {
                eff.tokens.push(Token::new(
                    ActivityName {
                        u: new_ctx,
                        c: *callee,
                        s: cb.params[k],
                        i: Iter::ONE,
                    },
                    Port(0),
                    op,
                ));
            }
        }
        _ => return execute_ro(ctx, tag, instr, ops),
    }
    Ok(eff)
}

/// Executes one enabled instruction that does *not* allocate a context;
/// needs only shared access to the context
/// table. `DInv` and `Return` read the records of contexts created by
/// strictly earlier firings, so worker threads run this concurrently
/// against [`crate::context::SharedContexts`] without coordination.
pub(crate) fn execute_ro<C: ContextOps>(
    ctx: &C,
    tag: ActivityName,
    instr: &Instruction,
    ops: &[Value],
) -> Result<Effect, ExecError> {
    let mut eff = Effect {
        is_alu: instr.op.is_alu_work(),
        ..Effect::default()
    };
    match &instr.op {
        OpCode::Identity => retag(tag, &instr.dests, ops[0], &mut eff.tokens),
        OpCode::Const(v) => retag(tag, &instr.dests, *v, &mut eff.tokens),
        OpCode::Alu(op) => {
            let v = op.apply(&ops[0], &ops[1])?;
            retag(tag, &instr.dests, v, &mut eff.tokens);
        }
        OpCode::Cmp(op) => {
            let v = op.apply(&ops[0], &ops[1])?;
            retag(tag, &instr.dests, v, &mut eff.tokens);
        }
        OpCode::Not => {
            let v = Value::Bool(!as_bool(&ops[0])?);
            retag(tag, &instr.dests, v, &mut eff.tokens);
        }
        OpCode::And => {
            let v = Value::Bool(as_bool(&ops[0])? && as_bool(&ops[1])?);
            retag(tag, &instr.dests, v, &mut eff.tokens);
        }
        OpCode::Or => {
            let v = Value::Bool(as_bool(&ops[0])? || as_bool(&ops[1])?);
            retag(tag, &instr.dests, v, &mut eff.tokens);
        }
        OpCode::Switch => {
            let take = as_bool(&ops[1])?;
            retag_branch(tag, &instr.dests, take, ops[0], &mut eff.tokens);
        }
        OpCode::D { .. } | OpCode::Apply { .. } => {
            // Context-allocating opcodes are routed through [`execute`];
            // reaching here is a backend-dispatch bug, not a program bug.
            return Err(ExecError::BadTarget {
                activity: format!("{tag} (context-allocating opcode in read-only execution)"),
            });
        }
        OpCode::DInv => {
            let rec = ctx.resolve(tag.u).ok_or(ExecError::BadTarget {
                activity: tag.to_string(),
            })?;
            let ntag = ActivityName {
                u: rec.parent,
                i: rec.parent_iter,
                ..tag
            };
            retag(ntag, &instr.dests, ops[0], &mut eff.tokens);
        }
        OpCode::L => {
            let ntag = ActivityName {
                i: tag.i.next(),
                ..tag
            };
            retag(ntag, &instr.dests, ops[0], &mut eff.tokens);
        }
        OpCode::LInv => {
            let ntag = ActivityName {
                i: Iter::ONE,
                ..tag
            };
            retag(ntag, &instr.dests, ops[0], &mut eff.tokens);
        }
        OpCode::Return => {
            let rec = ctx.resolve(tag.u).ok_or(ExecError::BadTarget {
                activity: tag.to_string(),
            })?;
            let ContextKind::Call { ret_block, dests } = rec.kind else {
                return Err(ExecError::BadTarget {
                    activity: format!("{tag} (Return outside a call context)"),
                });
            };
            let rtag = ActivityName {
                u: rec.parent,
                c: ret_block,
                s: tag.s, // replaced per-dest
                i: rec.parent_iter,
            };
            retag(rtag, &dests, ops[0], &mut eff.tokens);
        }
        OpCode::IAlloc => {
            let len = as_int(&ops[0])?;
            if len < 0 {
                return Err(ExecError::Type(crate::value::TypeError {
                    expected: "a nonnegative size",
                    got: len.to_string(),
                }));
            }
            eff.action = Some(StructAction::Alloc {
                len: len as usize,
                dests: continuation(tag, &instr.dests),
            });
        }
        OpCode::IFetch => {
            let ptr = as_ptr(&ops[0])?;
            let idx = nonneg_index(tag, as_int(&ops[1])?)?;
            eff.action = Some(StructAction::Fetch {
                ptr,
                idx,
                dests: continuation(tag, &instr.dests),
            });
        }
        OpCode::IStore => {
            let ptr = as_ptr(&ops[0])?;
            let idx = nonneg_index(tag, as_int(&ops[1])?)?;
            eff.action = Some(StructAction::Store {
                ptr,
                idx,
                value: ops[2],
                dests: continuation(tag, &instr.dests),
            });
        }
        OpCode::Output(slot) => {
            eff.output = Some((*slot, ops[0]));
        }
        OpCode::Sink => {}
    }
    Ok(eff)
}
