//! Program representation: dataflow graphs (§2.2.1).

use std::error::Error;
use std::fmt;

use crate::tag::Port;
use crate::value::{AluOp, CmpOp, Value};

/// Identifies a code block (`c` in the activity name). "Each procedure
/// and each loop has a unique code block name."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CodeBlockId(pub u32);

impl fmt::Display for CodeBlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifies an instruction within a code block (`s` in the activity
/// name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InstrId(pub u32);

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// When a destination receives the output token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DestBranch {
    /// Unconditional (every opcode except `Switch`).
    #[default]
    Always,
    /// `Switch` output taken when the control input is true.
    IfTrue,
    /// `Switch` output taken when the control input is false.
    IfFalse,
}

/// One outgoing edge of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dest {
    /// Target instruction (same code block; cross-block transfers happen
    /// only through `Apply`/`Return` and the context operators).
    pub instr: InstrId,
    /// Operand slot at the target.
    pub port: Port,
    /// Branch selector (used by `Switch`).
    pub when: DestBranch,
}

/// Machine operation codes.
///
/// Alongside the arithmetic/relational/conditional operators, the set
/// includes the paper's tag-manipulating instructions `D`, `D⁻¹`, `L`,
/// `L⁻¹` ("included to provide proper entry, iteration, and exit by
/// manipulating context-identifying information"), procedure linkage
/// (`Apply`/`Return`), and the I-structure operations of §2.2.4 (SELECT
/// becomes `IFetch`, APPEND becomes `IStore`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpCode {
    /// Pass the input through (used for parameters and forks).
    Identity,
    /// Emit the embedded constant when the (ignored) trigger token
    /// arrives at port 0. Compilers use this to release loop constants
    /// into an activation.
    Const(Value),
    /// Binary arithmetic.
    Alu(AluOp),
    /// Binary comparison (produces a boolean).
    Cmp(CmpOp),
    /// Boolean negation.
    Not,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// The conditional router: port 0 is data, port 1 is the boolean
    /// control; the data token is forwarded to the `IfTrue` or `IfFalse`
    /// destinations.
    Switch,
    /// Loop entry: allocates (or joins) the loop context for this
    /// activation and re-tags the token with `i = 1`. All `D`
    /// instructions of one loop share a `loop_id` so every circulating
    /// variable lands in the *same* new context.
    D {
        /// Which loop this entry belongs to (unique per loop in a block).
        loop_id: u32,
    },
    /// Loop exit: restores the context (and iteration number) saved by
    /// the matching `D`.
    DInv,
    /// Next iteration: `i ← i + 1`.
    L,
    /// Iteration reset: `i ← 1` within the same context.
    LInv,
    /// Procedure invocation: fires when all `argc` arguments have
    /// arrived, allocates a fresh callee context, and sends each argument
    /// to the callee's corresponding parameter instruction. The caller's
    /// destinations receive the value sent by the callee's `Return`.
    Apply {
        /// The code block to invoke.
        callee: CodeBlockId,
        /// Number of arguments (= callee parameter count).
        argc: u8,
    },
    /// Returns a value from a code block to whatever `Apply` created this
    /// context.
    Return,
    /// Allocates an I-structure of the size given by the integer input;
    /// outputs the pointer.
    IAlloc,
    /// SELECT: fetch element `index` (port 1) of the structure pointed to
    /// by port 0. Split-phase: the request travels to I-structure storage
    /// and the *response* token carries the element to the destinations,
    /// possibly much later (or deferred).
    IFetch,
    /// APPEND: store port 2's value at element `index` (port 1) of the
    /// structure at port 0. Produces a unit signal token.
    IStore,
    /// Writes the input value to a program output slot and produces
    /// nothing.
    Output(u32),
    /// Absorbs the input token (signal termination).
    Sink,
}

impl OpCode {
    /// Total operand slots this opcode consumes.
    pub fn arity(&self) -> u8 {
        match self {
            OpCode::Identity
            | OpCode::Const(_)
            | OpCode::Not
            | OpCode::D { .. }
            | OpCode::DInv
            | OpCode::L
            | OpCode::LInv
            | OpCode::Return
            | OpCode::IAlloc
            | OpCode::Output(_)
            | OpCode::Sink => 1,
            OpCode::Alu(_)
            | OpCode::Cmp(_)
            | OpCode::And
            | OpCode::Or
            | OpCode::Switch
            | OpCode::IFetch => 2,
            OpCode::IStore => 3,
            OpCode::Apply { argc, .. } => *argc,
        }
    }

    /// Whether this opcode is executed by the ALU proper (counted toward
    /// ALU utilization) as opposed to tag manipulation / routing /
    /// storage traffic.
    pub fn is_alu_work(&self) -> bool {
        matches!(
            self,
            OpCode::Alu(_) | OpCode::Cmp(_) | OpCode::Not | OpCode::And | OpCode::Or
        )
    }
}

/// One vertex of the dataflow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The operation.
    pub op: OpCode,
    /// Number of *tokens* required to enable the instruction (the
    /// paper's `nt`): the opcode's arity minus a literal operand if one
    /// is present.
    pub nt: u8,
    /// An optional compile-time constant occupying one operand slot.
    pub literal: Option<(Port, Value)>,
    /// Outgoing edges.
    pub dests: Vec<Dest>,
}

impl Instruction {
    /// Creates an instruction with no literal and no destinations.
    pub fn new(op: OpCode) -> Self {
        let nt = op.arity();
        Instruction {
            op,
            nt,
            literal: None,
            dests: Vec::new(),
        }
    }

    /// Attaches a literal operand at `port`, reducing `nt` by one.
    pub fn with_literal(mut self, port: Port, value: Value) -> Self {
        self.literal = Some((port, value));
        self.nt = self.op.arity().saturating_sub(1);
        self
    }
}

/// A compiled procedure or top-level expression.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeBlock {
    /// Human-readable name (for diagnostics and dot output).
    pub name: String,
    /// The instructions; index == [`InstrId`].
    pub instrs: Vec<Instruction>,
    /// Entry instructions, one per parameter: argument `k` of an
    /// invocation is delivered to `params[k]` at port 0.
    pub params: Vec<InstrId>,
    /// Per-instruction scheduling criticality: the remaining
    /// critical-path height of each instruction (see
    /// [`Analysis::height`](crate::opt::analysis::Analysis::height)),
    /// attached by [`annotate_criticality`](crate::opt::annotate_criticality)
    /// — `compile_optimized` does this for every compiled program.
    /// Empty means "not annotated"; schedulers recompute on demand.
    /// Stale after any graph rewrite, like every other analysis.
    pub criticality: Vec<u32>,
}

impl CodeBlock {
    /// Looks up an instruction.
    pub fn instr(&self, id: InstrId) -> Option<&Instruction> {
        self.instrs.get(id.0 as usize)
    }
}

/// Errors found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A destination pointed at a nonexistent instruction.
    BadDest {
        /// Block containing the edge.
        block: CodeBlockId,
        /// Source instruction.
        from: InstrId,
        /// The dangling target.
        to: InstrId,
    },
    /// A destination port exceeded the target's operand count.
    BadPort {
        /// Block containing the edge.
        block: CodeBlockId,
        /// Target instruction.
        to: InstrId,
        /// The offending port.
        port: Port,
    },
    /// A `Switch` destination used `Always`, or a non-`Switch` used a
    /// branch selector.
    BadBranch {
        /// Block containing the edge.
        block: CodeBlockId,
        /// Source instruction.
        from: InstrId,
    },
    /// `Apply` referenced a missing code block or wrong argument count.
    BadApply {
        /// Block containing the apply.
        block: CodeBlockId,
        /// The apply instruction.
        at: InstrId,
    },
    /// A code block used as an `Apply` target has no `Return`.
    NoReturn {
        /// The offending callee.
        callee: CodeBlockId,
    },
    /// A parameter entry pointed at a nonexistent instruction.
    BadParam {
        /// The offending block.
        block: CodeBlockId,
    },
    /// The `main` block id does not exist.
    BadMain,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::BadDest { block, from, to } => {
                write!(f, "{block}:{from} targets nonexistent {to}")
            }
            GraphError::BadPort { block, to, port } => {
                write!(f, "{block}:{to} has no operand {port}")
            }
            GraphError::BadBranch { block, from } => {
                write!(f, "{block}:{from} has an inconsistent branch selector")
            }
            GraphError::BadApply { block, at } => {
                write!(f, "{block}:{at} applies a bad code block or arg count")
            }
            GraphError::NoReturn { callee } => write!(f, "callee {callee} has no Return"),
            GraphError::BadParam { block } => write!(f, "{block} has a dangling parameter"),
            GraphError::BadMain => write!(f, "main code block does not exist"),
        }
    }
}

impl Error for GraphError {}

/// A complete dataflow program: code blocks plus the distinguished main
/// block whose parameters are the program inputs and whose `Output`
/// instructions are the program results.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// All code blocks; index == [`CodeBlockId`].
    pub blocks: Vec<CodeBlock>,
    /// The entry block.
    pub main: CodeBlockId,
}

impl Program {
    /// Looks up a code block.
    pub fn block(&self, id: CodeBlockId) -> Option<&CodeBlock> {
        self.blocks.get(id.0 as usize)
    }

    /// Total instruction count across blocks.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Merges several programs into one multiprogrammed image.
    ///
    /// Every block of every input program is copied (with `Apply` callee
    /// ids re-based); program `k`'s main block's `Output(slot)`
    /// instructions are renumbered to `k * slot_stride + slot` so result
    /// slots never collide. The merged program's main is a trivial
    /// launcher — callers start each job themselves via
    /// [`Emulator`](crate::Emulator)/[`TimedMachine`](crate::TimedMachine)
    /// `submit`, which injects each job's inputs into its own main
    /// block under a fresh context.
    ///
    /// This is the §1.2.4 counterpoint made executable: a lockstep VLIW
    /// cannot multiprogram at all, while tagged tokens let unrelated
    /// programs interleave instruction-by-instruction with no
    /// interference — their activity names can never match.
    ///
    /// Returns the merged program plus, per input program, the id of its
    /// (former) main block.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    pub fn merge(programs: &[Program], slot_stride: u32) -> (Program, Vec<CodeBlockId>) {
        assert!(!programs.is_empty(), "need at least one program");
        let mut blocks = Vec::new();
        let mut mains = Vec::new();
        let mut base: u32 = 0;
        for (k, p) in programs.iter().enumerate() {
            mains.push(CodeBlockId(base + p.main.0));
            for b in &p.blocks {
                let mut nb = b.clone();
                for ins in &mut nb.instrs {
                    match &mut ins.op {
                        OpCode::Apply { callee, .. } => callee.0 += base,
                        OpCode::Output(slot) => *slot += k as u32 * slot_stride,
                        _ => {}
                    }
                }
                blocks.push(nb);
            }
            base += p.blocks.len() as u32;
        }
        let main = mains[0];
        (Program { blocks, main }, mains)
    }

    /// Structural validation; a `Program` that passes can be executed
    /// without per-token bounds checks failing.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] found.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.block(self.main).is_none() {
            return Err(GraphError::BadMain);
        }
        for (bi, block) in self.blocks.iter().enumerate() {
            let bid = CodeBlockId(bi as u32);
            for &p in &block.params {
                if block.instr(p).is_none() {
                    return Err(GraphError::BadParam { block: bid });
                }
            }
            for (si, ins) in block.instrs.iter().enumerate() {
                let sid = InstrId(si as u32);
                if let OpCode::Apply { callee, argc } = ins.op {
                    match self.block(callee) {
                        Some(cb) if cb.params.len() == argc as usize => {
                            if !cb.instrs.iter().any(|i| i.op == OpCode::Return) {
                                return Err(GraphError::NoReturn { callee });
                            }
                        }
                        _ => {
                            return Err(GraphError::BadApply {
                                block: bid,
                                at: sid,
                            })
                        }
                    }
                }
                let is_switch = ins.op == OpCode::Switch;
                for d in &ins.dests {
                    let Some(target) = block.instr(d.instr) else {
                        return Err(GraphError::BadDest {
                            block: bid,
                            from: sid,
                            to: d.instr,
                        });
                    };
                    if d.port.0 >= target.op.arity() {
                        return Err(GraphError::BadPort {
                            block: bid,
                            to: d.instr,
                            port: d.port,
                        });
                    }
                    if let Some((lp, _)) = target.literal {
                        if lp == d.port {
                            return Err(GraphError::BadPort {
                                block: bid,
                                to: d.instr,
                                port: d.port,
                            });
                        }
                    }
                    let branch_ok = if is_switch {
                        d.when != DestBranch::Always
                    } else {
                        d.when == DestBranch::Always
                    };
                    if !branch_ok {
                        return Err(GraphError::BadBranch {
                            block: bid,
                            from: sid,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Renders the program as Graphviz dot (one cluster per code block) —
    /// the stylized-graph view of Fig 2-2.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph ttda {\n  rankdir=TB;\n");
        for (bi, block) in self.blocks.iter().enumerate() {
            let _ = writeln!(s, "  subgraph cluster_{bi} {{");
            let _ = writeln!(
                s,
                "    label=\"{} ({})\";",
                block.name,
                CodeBlockId(bi as u32)
            );
            for (si, ins) in block.instrs.iter().enumerate() {
                let label = format!("{:?}", ins.op)
                    .replace('"', "'")
                    .replace('{', "(")
                    .replace('}', ")");
                let _ = writeln!(s, "    b{bi}s{si} [label=\"s{si}: {label}\"];");
            }
            for (si, ins) in block.instrs.iter().enumerate() {
                for d in &ins.dests {
                    let style = match d.when {
                        DestBranch::Always => "",
                        DestBranch::IfTrue => " [label=T]",
                        DestBranch::IfFalse => " [label=F]",
                    };
                    let _ = writeln!(s, "    b{bi}s{si} -> b{bi}s{}{};", d.instr.0, style);
                }
            }
            let _ = writeln!(s, "  }}");
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_block(instrs: Vec<Instruction>, params: Vec<InstrId>) -> Program {
        Program {
            blocks: vec![CodeBlock {
                name: "t".into(),
                instrs,
                params,
                criticality: Vec::new(),
            }],
            main: CodeBlockId(0),
        }
    }

    #[test]
    fn arity_table() {
        assert_eq!(OpCode::Identity.arity(), 1);
        assert_eq!(OpCode::Alu(AluOp::Add).arity(), 2);
        assert_eq!(OpCode::IStore.arity(), 3);
        assert_eq!(
            OpCode::Apply {
                callee: CodeBlockId(0),
                argc: 4
            }
            .arity(),
            4
        );
        assert!(OpCode::Alu(AluOp::Add).is_alu_work());
        assert!(!OpCode::Switch.is_alu_work());
    }

    #[test]
    fn literal_reduces_nt() {
        let i = Instruction::new(OpCode::Alu(AluOp::Add)).with_literal(Port(1), Value::Int(5));
        assert_eq!(i.nt, 1);
        assert_eq!(Instruction::new(OpCode::Alu(AluOp::Add)).nt, 2);
    }

    #[test]
    fn validate_catches_dangling_dest() {
        let mut i = Instruction::new(OpCode::Identity);
        i.dests.push(Dest {
            instr: InstrId(9),
            port: Port(0),
            when: DestBranch::Always,
        });
        let p = one_block(vec![i], vec![]);
        assert!(matches!(p.validate(), Err(GraphError::BadDest { .. })));
    }

    #[test]
    fn validate_catches_bad_port_and_literal_collision() {
        let mut src = Instruction::new(OpCode::Identity);
        src.dests.push(Dest {
            instr: InstrId(1),
            port: Port(5),
            when: DestBranch::Always,
        });
        let tgt = Instruction::new(OpCode::Alu(AluOp::Add));
        let p = one_block(vec![src.clone(), tgt], vec![]);
        assert!(matches!(p.validate(), Err(GraphError::BadPort { .. })));

        // Wiring into a literal-occupied port is also an error.
        src.dests[0].port = Port(1);
        let tgt = Instruction::new(OpCode::Alu(AluOp::Add)).with_literal(Port(1), Value::Int(0));
        let p = one_block(vec![src, tgt], vec![]);
        assert!(matches!(p.validate(), Err(GraphError::BadPort { .. })));
    }

    #[test]
    fn validate_checks_switch_branches() {
        let mut sw = Instruction::new(OpCode::Switch);
        sw.dests.push(Dest {
            instr: InstrId(1),
            port: Port(0),
            when: DestBranch::Always,
        });
        let sink = Instruction::new(OpCode::Sink);
        let p = one_block(vec![sw, sink], vec![]);
        assert!(matches!(p.validate(), Err(GraphError::BadBranch { .. })));

        let mut id = Instruction::new(OpCode::Identity);
        id.dests.push(Dest {
            instr: InstrId(1),
            port: Port(0),
            when: DestBranch::IfTrue,
        });
        let sink = Instruction::new(OpCode::Sink);
        let p = one_block(vec![id, sink], vec![]);
        assert!(matches!(p.validate(), Err(GraphError::BadBranch { .. })));
    }

    #[test]
    fn validate_checks_apply() {
        let apply = Instruction::new(OpCode::Apply {
            callee: CodeBlockId(7),
            argc: 1,
        });
        let p = one_block(vec![apply], vec![]);
        assert!(matches!(p.validate(), Err(GraphError::BadApply { .. })));
    }

    #[test]
    fn validate_requires_return_in_callee() {
        let callee = CodeBlock {
            name: "f".into(),
            instrs: vec![Instruction::new(OpCode::Identity)],
            params: vec![InstrId(0)],
            criticality: Vec::new(),
        };
        let apply = Instruction::new(OpCode::Apply {
            callee: CodeBlockId(1),
            argc: 1,
        });
        let main = CodeBlock {
            name: "m".into(),
            instrs: vec![apply],
            params: vec![],
            criticality: Vec::new(),
        };
        let p = Program {
            blocks: vec![main, callee],
            main: CodeBlockId(0),
        };
        assert_eq!(
            p.validate(),
            Err(GraphError::NoReturn {
                callee: CodeBlockId(1)
            })
        );
    }

    #[test]
    fn validate_bad_main_and_param() {
        let p = Program {
            blocks: vec![],
            main: CodeBlockId(0),
        };
        assert_eq!(p.validate(), Err(GraphError::BadMain));
        let p = one_block(vec![], vec![InstrId(3)]);
        assert!(matches!(p.validate(), Err(GraphError::BadParam { .. })));
    }

    #[test]
    fn dot_output_mentions_blocks() {
        let p = one_block(vec![Instruction::new(OpCode::Identity)], vec![InstrId(0)]);
        let dot = p.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("s0: Identity"));
    }
}
