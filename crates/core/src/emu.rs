//! The fast graph interpreter (the *emulation* prong of Fig 3-1).
//!
//! The emulator executes a program in **waves**: every instruction that
//! is enabled fires simultaneously, its output tokens enabling the next
//! wave — the behaviour of an idealized machine with unbounded processing
//! elements and unit-time everything. Besides the program's results, it
//! therefore yields the *parallelism profile* (enabled instructions per
//! wave) and the *critical path* (number of waves), the two quantities
//! the paper's group built a 32–128-processor emulation facility to
//! measure for "very large application programs".

use std::collections::HashMap;

use ttda_mem::{Addr, IStructure, Presence, ReadOutcome};
use ttda_sim::Cycle;
use ttda_trace::{PresenceState, SharedSink, TraceEvent};

use crate::context::ContextManager;
use crate::exec::{execute, StructAction};
use crate::graph::{Instruction, Program};
use crate::matching::{MatchingStore, Operands};
use crate::sched::{env_sched, CritMap, SchedPolicy};
use crate::tag::{ActivityName, Iter, Port, Token};
use crate::value::{StructRef, Value};
use crate::wave::Wave;
use crate::ExecError;

/// Everything a finished emulation run reports.
///
/// `PartialEq` compares every field; the determinism tests use it to
/// check the parallel backend bit-for-bit against the sequential one.
#[derive(Debug, Clone, PartialEq)]
pub struct EmuResult {
    /// Program outputs by slot.
    pub outputs: HashMap<u32, Value>,
    /// Total instruction firings.
    pub instructions: u64,
    /// Firings that were real ALU work (arithmetic/relational/boolean).
    pub alu_ops: u64,
    /// Critical-path length in waves (idealized time).
    pub waves: u64,
    /// Enabled-instruction count per wave — the parallelism profile.
    pub profile: Vec<usize>,
    /// Contexts allocated (loop activations + procedure calls).
    pub contexts: usize,
    /// Peak occupancy of the waiting–matching store.
    pub peak_matching: usize,
    /// Peak number of simultaneously outstanding deferred reads across
    /// all I-structures (consumers running ahead of producers).
    pub peak_deferred: usize,
    /// I-structure reads satisfied immediately.
    pub istore_immediate: u64,
    /// I-structure reads deferred (consumer arrived before producer).
    pub istore_deferred: u64,
    /// I-structure writes.
    pub istore_writes: u64,
}

impl EmuResult {
    /// Average parallelism: firings / waves.
    pub fn mean_parallelism(&self) -> f64 {
        if self.waves == 0 {
            0.0
        } else {
            self.instructions as f64 / self.waves as f64
        }
    }

    /// Peak parallelism: the widest wave.
    pub fn peak_parallelism(&self) -> usize {
        self.profile.iter().copied().max().unwrap_or(0)
    }
}

/// How the emulator schedules a run. See [`Emulator::with_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// The single-threaded reference interpreter.
    Sequential,
    /// The parallel wave backend with the index-ordered merge: the
    /// [`EmuResult`] is **bit-identical** to [`RunMode::Sequential`] at
    /// any thread count. Forcing this at one thread runs the full
    /// coordination protocol with a single worker — that is the
    /// coordinator-overhead measurement of the `par` bench suite.
    Deterministic,
    /// The decoordinated backend: no wave barrier, no index-ordered
    /// merge, tokens flow worker-to-worker as they are produced and
    /// waves overlap freely. Program *outputs*, instruction/ALU counts,
    /// the context count and the error discriminant match
    /// [`RunMode::Sequential`] (dataflow confluence); wave structure
    /// (`waves`, `profile`), peak occupancies and the
    /// immediate-vs-deferred read split are schedule-dependent. See
    /// `DESIGN.md` §13 for the exact guarantees.
    Relaxed,
}

/// Worker-thread default: the `TTDA_THREADS` environment variable, so a
/// whole test suite or experiment batch can switch backends without code
/// changes (`TTDA_THREADS=4 cargo test`). Unset means 1 (sequential);
/// 0 means "one worker per available core". An unparsable value also
/// falls back to 1, but says so on stderr (once per process) instead of
/// silently running sequential when the user asked for something else.
fn env_threads() -> usize {
    match std::env::var("TTDA_THREADS") {
        Err(_) => 1,
        Ok(s) => match s.trim().parse() {
            Ok(n) => n,
            Err(_) => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "ttda-core: TTDA_THREADS={s:?} is not a thread count; \
                         running sequential (set an integer, or 0 for all cores)"
                    );
                });
                1
            }
        },
    }
}

/// Parses a `TTDA_RELAXED` value, case-insensitively: `1`/`true`/`on`
/// opt in, `0`/`false`/`off`/empty opt out, anything else is
/// unrecognized (`None`).
fn parse_relaxed(s: &str) -> Option<bool> {
    match s.to_ascii_lowercase().as_str() {
        "1" | "true" | "on" => Some(true),
        "" | "0" | "false" | "off" => Some(false),
        _ => None,
    }
}

/// Run-mode default: `TTDA_RELAXED=1` makes [`RunMode::Relaxed`] the
/// process-wide default (read at [`Emulator::new`], overridable per
/// instance with [`Emulator::with_mode`]). An unrecognized value falls
/// back to the automatic default, but says so on stderr once per
/// process.
fn env_relaxed() -> bool {
    match std::env::var("TTDA_RELAXED") {
        Err(_) => false,
        Ok(s) => match parse_relaxed(s.trim()) {
            Some(on) => on,
            None => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "ttda-core: TTDA_RELAXED={s:?} is not recognized; \
                         staying in deterministic mode (set 1 or 0)"
                    );
                });
                false
            }
        },
    }
}

/// The untimed tagged-token interpreter.
///
/// See the [crate docs](crate) for an end-to-end example.
pub struct Emulator<'p> {
    program: &'p Program,
    ctx: ContextManager,
    waiting: MatchingStore,
    structures: Vec<IStructure<Value, (ActivityName, Port)>>,
    outputs: HashMap<u32, Value>,
    fuel: u64,
    loop_bound: Option<u32>,
    threads: usize,
    mode: Option<RunMode>,
    sched: SchedPolicy,
    instructions: u64,
    alu_ops: u64,
    peak_matching: usize,
    istore_immediate: u64,
    istore_deferred: u64,
    istore_writes: u64,
    sink: Option<SharedSink>,
    /// Trace timestamp: the current wave index (idealized time).
    now: Cycle,
}

impl std::fmt::Debug for Emulator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Emulator")
            .field("instructions", &self.instructions)
            .field("waiting", &self.waiting.len())
            .field("structures", &self.structures.len())
            .field("loop_bound", &self.loop_bound)
            .field("traced", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

impl<'p> Emulator<'p> {
    /// Creates an emulator for `program` (which should have passed
    /// [`Program::validate`], as anything from
    /// [`GraphBuilder`](crate::GraphBuilder) has).
    pub fn new(program: &'p Program) -> Self {
        Emulator {
            program,
            ctx: ContextManager::new(program.main),
            waiting: MatchingStore::new(),
            structures: Vec::new(),
            outputs: HashMap::new(),
            fuel: 100_000_000,
            loop_bound: None,
            threads: env_threads(),
            mode: env_relaxed().then_some(RunMode::Relaxed),
            sched: env_sched(),
            instructions: 0,
            alu_ops: 0,
            peak_matching: 0,
            istore_immediate: 0,
            istore_deferred: 0,
            istore_writes: 0,
            sink: None,
            now: Cycle::ZERO,
        }
    }

    /// Overrides the firing budget (default 10⁸).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Selects the execution backend: `1` (the default) runs the
    /// sequential interpreter; `n > 1` executes each wave across `n`
    /// scoped worker threads with the waiting–matching store and the
    /// structure table sharded between them; `0` means one worker per
    /// available core. The default can also be set process-wide with the
    /// `TTDA_THREADS` environment variable, read at [`Emulator::new`].
    ///
    /// The parallel backend produces a bit-identical [`EmuResult`] for
    /// every program (see the determinism notes in `DESIGN.md`), so the
    /// choice is purely about wall-clock speed. [`with_loop_bound`]
    /// (k-bounded loops) forces the sequential backend regardless — its
    /// holding-pen scheduling is a global order-sensitive fixpoint that
    /// would serialize the workers anyway.
    ///
    /// [`with_loop_bound`]: Emulator::with_loop_bound
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Pins the execution backend explicitly instead of deriving it from
    /// the thread count. The automatic default is
    /// [`RunMode::Sequential`] at one thread and
    /// [`RunMode::Deterministic`] above, or [`RunMode::Relaxed`] when
    /// `TTDA_RELAXED=1` is set (read at [`Emulator::new`]).
    ///
    /// [`with_loop_bound`](Emulator::with_loop_bound) forces the
    /// sequential interpreter regardless of the pinned mode: k-bounded
    /// scheduling is a global, order-sensitive fixpoint.
    pub fn with_mode(mut self, mode: RunMode) -> Self {
        self.mode = Some(mode);
        self
    }

    /// Sugar for [`with_mode`](Emulator::with_mode)`(RunMode::Relaxed)`:
    /// `Emulator::new(&p).with_threads(n).relaxed()` opts into the
    /// decoordinated backend.
    pub fn relaxed(self) -> Self {
        self.with_mode(RunMode::Relaxed)
    }

    /// Selects the token scheduling policy (see [`SchedPolicy`]):
    /// [`SchedPolicy::Fifo`] (the default) fires each wave in arrival
    /// order, [`SchedPolicy::Crit`] fires greatest remaining
    /// critical-path height first, arrival order on ties. The default
    /// can also be set process-wide with `TTDA_SCHED=fifo|crit`, read at
    /// [`Emulator::new`].
    ///
    /// Scheduling never changes program outputs (dataflow confluence),
    /// and under [`RunMode::Deterministic`] the full [`EmuResult`] is
    /// still bit-identical at every thread count for a fixed policy —
    /// the wave is stably reordered *before* wave indices are assigned,
    /// so the index-ordered merge is untouched. What a policy *does*
    /// change is intra-wave firing order, which the timed machine turns
    /// into makespan (the `sched` bench suite and E23 measure it).
    pub fn with_sched(mut self, policy: SchedPolicy) -> Self {
        self.sched = policy;
        self
    }

    /// The resolved worker count: `0` → available cores.
    fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Attaches a trace sink. The emulator reports every token's emit
    /// and consume, waiting–matching traffic, wave widths, I-structure
    /// activity and the final halt; timestamps are wave indices (the
    /// idealized machine's clock).
    pub fn with_sink(mut self, sink: SharedSink) -> Self {
        self.sink = Some(sink);
        self
    }

    #[inline]
    fn trace(&self, ev: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(self.now, &ev);
        }
    }

    /// Enables **k-bounded loops**: at most `k` consecutive iterations of
    /// any loop activation may be in flight at once. Tokens of iteration
    /// `i` are held back until every iteration before `i − k` has drained
    /// from the context.
    ///
    /// The paper's unbounded-iteration execution model exposes maximal
    /// parallelism but also maximal waiting–matching occupancy; bounding
    /// loops was the classic follow-on resource-management mechanism for
    /// tagged-token machines, and ablation A4 measures the trade here.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_loop_bound(mut self, k: u32) -> Self {
        assert!(k > 0, "loop bound must be at least 1");
        self.loop_bound = Some(k);
        self
    }

    /// Runs the program on `inputs` (one value per `main` parameter).
    ///
    /// # Errors
    ///
    /// - [`ExecError::InputArity`] for the wrong number of inputs;
    /// - [`ExecError::Type`] / [`ExecError::IStructure`] for runtime
    ///   errors (including detected write-write races);
    /// - [`ExecError::Deadlock`] if execution quiesces with tokens still
    ///   unmatched or reads still deferred;
    /// - [`ExecError::OutOfFuel`] past the firing budget.
    pub fn run(&mut self, inputs: &[Value]) -> Result<EmuResult, ExecError> {
        self.submit(&[crate::machine::Job::new(self.program.main, inputs.to_vec())])
    }

    /// Multiprogramming: launches a batch of independent [`Job`]s — each
    /// a code block (typically a former `main` from [`Program::merge`])
    /// with its own inputs — under fresh root contexts, and runs them to
    /// joint completion. Tagged tokens guarantee the jobs cannot
    /// interfere: their activity names differ in `u` from the first wave
    /// on. A job's `tenant` label is accounting metadata for schedulers
    /// and is ignored here; fuel shares pool into a joint batch budget
    /// (see [`Job::fuel`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Emulator::run`]; `InputArity` refers to the
    /// offending job's block.
    ///
    /// [`Job`]: crate::machine::Job
    /// [`Job::fuel`]: crate::machine::Job::fuel
    pub fn submit(&mut self, jobs: &[crate::machine::Job]) -> Result<EmuResult, ExecError> {
        let threads = self.effective_threads();
        let fuel = crate::machine::batch_fuel(self.fuel, jobs);
        let mode = match self.mode {
            // k-bounded scheduling is a global, order-sensitive
            // fixpoint; it always runs on the reference interpreter.
            _ if self.loop_bound.is_some() => RunMode::Sequential,
            Some(m) => m,
            None if threads > 1 => RunMode::Deterministic,
            None => RunMode::Sequential,
        };
        match mode {
            RunMode::Sequential => {}
            RunMode::Deterministic => {
                return crate::par::submit(
                    self.program,
                    jobs,
                    threads,
                    fuel,
                    self.sched,
                    self.sink.clone(),
                );
            }
            RunMode::Relaxed => {
                return crate::relaxed::submit(
                    self.program,
                    jobs,
                    threads,
                    fuel,
                    self.sched,
                    self.sink.clone(),
                );
            }
        }
        // Built once per run; FIFO never consults it.
        let crit = (self.sched == SchedPolicy::Crit).then(|| CritMap::of(self.program));
        let mut wave = Wave::new();
        for job in jobs {
            let (block_id, inputs) = (&job.block, &job.inputs);
            let block = self.program.block(*block_id).ok_or(ExecError::BadTarget {
                activity: block_id.to_string(),
            })?;
            if inputs.len() != block.params.len() {
                return Err(ExecError::InputArity {
                    expected: block.params.len(),
                    got: inputs.len(),
                });
            }
            let root = self.ctx.new_root(*block_id);
            for (k, v) in inputs.iter().enumerate() {
                wave.push(
                    ActivityName {
                        u: root,
                        c: *block_id,
                        s: block.params[k],
                        i: Iter::ONE,
                    },
                    Port(0),
                    *v,
                );
                self.trace(TraceEvent::TokenEmit { pe: 0 });
            }
        }

        let mut profile = Vec::new();
        let mut held: Vec<Token> = Vec::new();
        let mut peak_deferred = 0usize;

        while !wave.is_empty() || !held.is_empty() {
            // k-bounded loops: a token of iteration i in context u is
            // eligible only while i is within k of the oldest live
            // iteration of u. Oldest = min over every pending place
            // (this wave, the holding pen, and the matching store).
            if let Some(k) = self.loop_bound {
                let mut oldest: HashMap<crate::tag::Ctx, u32> = HashMap::new();
                let mut note = |tag: &ActivityName| {
                    oldest
                        .entry(tag.u)
                        .and_modify(|m| *m = (*m).min(tag.i.0))
                        .or_insert(tag.i.0);
                };
                for tag in wave.tags() {
                    note(tag);
                }
                for t in held.iter() {
                    note(&t.tag);
                }
                self.waiting.for_each_key(|tag| note(&tag));
                // Deferred readers are live too: their iteration has not
                // finished until the datum arrives.
                for st in &self.structures {
                    st.for_each_deferred(|(tag, _)| note(tag));
                }
                let eligible = |tag: &ActivityName| tag.i.0 <= oldest[&tag.u].saturating_add(k);
                wave.retain_or_spill(&eligible, &mut held);
                let mut released: Vec<Token> = Vec::new();
                held.retain(|t| {
                    if eligible(&t.tag) {
                        released.push(t.clone());
                        false
                    } else {
                        true
                    }
                });
                wave.extend_tokens(released);
                if wave.is_empty() {
                    if held.is_empty() {
                        break;
                    }
                    // Nothing eligible: release the oldest held iteration
                    // to guarantee progress.
                    let min_i = held.iter().map(|t| t.tag.i.0).min().expect("nonempty");
                    let mut released: Vec<Token> = Vec::new();
                    held.retain(|t| {
                        if t.tag.i.0 == min_i {
                            released.push(t.clone());
                            false
                        } else {
                            true
                        }
                    });
                    wave.extend_tokens(released);
                }
            }

            // Criticality scheduling: fire the longest-remaining-path
            // tokens first. The wave *partition* is untouched (same
            // tokens, same wave), only the intra-wave order moves —
            // which is what decides transient matching occupancy and
            // the immediate-vs-deferred read split.
            if let Some(crit) = &crit {
                wave.sort_by_criticality(crit);
            }

            let mut next = Wave::new();
            let mut fired = 0usize;
            for i in 0..wave.len() {
                if let Some(operands) = self.absorb(wave.token(i))? {
                    fired += 1;
                    self.fire(operands.0, operands.1, &mut next)?;
                    if self.instructions > fuel {
                        return Err(ExecError::OutOfFuel);
                    }
                }
            }
            self.peak_matching = self.peak_matching.max(self.waiting.len());
            peak_deferred = peak_deferred.max(self.outstanding_deferred());
            if fired > 0 {
                profile.push(fired);
                self.trace(TraceEvent::WaveEnd {
                    fired: fired as u64,
                });
                self.now = self.now.saturating_add(Cycle(1));
            }
            wave = next;
        }

        let stranded = self.waiting.len() + self.stranded_readers();
        if stranded > 0 {
            return Err(ExecError::Deadlock { stranded });
        }
        // Clean quiescence: the wave and holding pen are both empty, so
        // nothing is in flight.
        self.trace(TraceEvent::Halt { in_flight: 0 });

        Ok(EmuResult {
            outputs: self.outputs.clone(),
            instructions: self.instructions,
            alu_ops: self.alu_ops,
            waves: profile.len() as u64,
            profile,
            contexts: self.ctx.allocated(),
            peak_matching: self.peak_matching,
            peak_deferred,
            istore_immediate: self.istore_immediate,
            istore_deferred: self.istore_deferred,
            istore_writes: self.istore_writes,
        })
    }

    /// Deferred readers currently parked across every structure.
    /// Sampled once per wave, so it uses the structures' O(1) running
    /// counters rather than scanning every cell.
    fn outstanding_deferred(&self) -> usize {
        self.stranded_readers()
    }

    fn stranded_readers(&self) -> usize {
        self.structures
            .iter()
            .map(|s| s.deferred_outstanding())
            .sum()
    }

    fn lookup(&self, tag: ActivityName) -> Result<&Instruction, ExecError> {
        self.program
            .block(tag.c)
            .and_then(|b| b.instr(tag.s))
            .ok_or_else(|| ExecError::BadTarget {
                activity: tag.to_string(),
            })
    }

    /// The waiting–matching section: inserts a token; returns the full
    /// operand set when the instruction becomes enabled.
    fn absorb(&mut self, token: Token) -> Result<Option<(ActivityName, Operands)>, ExecError> {
        let r = crate::exec::absorb(self.program, &mut self.waiting, token)?;
        self.peak_matching = self.peak_matching.max(self.waiting.len());
        if self.sink.is_some() {
            self.trace(TraceEvent::TokenConsume { pe: 0 });
            if r.is_none() {
                self.trace(TraceEvent::MatchWait {
                    pe: 0,
                    occupancy: self.waiting.len() as u64,
                });
            }
        }
        Ok(r)
    }

    /// The instruction-fetch + ALU + output sections: executes one
    /// enabled instruction via the shared semantics in [`crate::exec`],
    /// applying I-structure actions inline.
    fn fire(&mut self, tag: ActivityName, ops: Operands, out: &mut Wave) -> Result<(), ExecError> {
        let instr = self.lookup(tag)?.clone();
        self.instructions += 1;
        let eff = execute(self.program, &mut self.ctx, tag, &instr, &ops)?;
        if eff.is_alu {
            self.alu_ops += 1;
        }
        // Clone the sink handle so istore tracing below can run while the
        // store is mutably borrowed. `None.clone()` is free, keeping the
        // disabled path at one branch.
        let sink = self.sink.clone();
        let now = self.now;
        let trace = |ev: &TraceEvent| {
            if let Some(s) = &sink {
                s.borrow_mut().record(now, ev);
            }
        };
        let out_before = out.len();
        trace(&TraceEvent::MatchFire {
            pe: 0,
            alu: eff.is_alu,
            busy: 0,
        });
        out.extend_tokens(eff.tokens);
        if let Some((slot, v)) = eff.output {
            self.outputs.insert(slot, v);
        }
        match eff.action {
            None => {}
            Some(StructAction::Alloc { len, dests }) => {
                let id = self.structures.len() as u32;
                self.structures.push(IStructure::new(len));
                let p = Value::Ptr(StructRef {
                    id,
                    len: len as u32,
                });
                for (rtag, port) in dests {
                    out.push(rtag, port, p);
                }
            }
            Some(StructAction::Fetch { ptr, idx, dests }) => {
                let mut immediate = 0u64;
                let mut deferred = 0u64;
                let traced = sink.is_some();
                let store = self.store_mut(tag, ptr)?;
                for (rtag, port) in dests {
                    let before = if traced {
                        store.presence(Addr(idx))?
                    } else {
                        Presence::Empty
                    };
                    match store.read(Addr(idx), (rtag, port))? {
                        ReadOutcome::Value(v) => {
                            immediate += 1;
                            out.push(rtag, port, v);
                            trace(&TraceEvent::IStoreRead {
                                module: ptr.id,
                                immediate: true,
                            });
                        }
                        ReadOutcome::Deferred => {
                            deferred += 1;
                            if traced {
                                trace(&TraceEvent::IStoreRead {
                                    module: ptr.id,
                                    immediate: false,
                                });
                                trace(&TraceEvent::DeferEnqueue {
                                    module: ptr.id,
                                    depth: store.deferred_count(Addr(idx))? as u64,
                                });
                                if before != Presence::Deferred {
                                    trace(&TraceEvent::Presence {
                                        module: ptr.id,
                                        from: before.as_trace(),
                                        to: PresenceState::Deferred,
                                    });
                                }
                            }
                        }
                    }
                }
                self.istore_immediate += immediate;
                self.istore_deferred += deferred;
            }
            Some(StructAction::Store {
                ptr,
                idx,
                value,
                dests,
            }) => {
                let traced = sink.is_some();
                let store = self.store_mut(tag, ptr)?;
                let before = if traced {
                    store.presence(Addr(idx))?
                } else {
                    Presence::Empty
                };
                // Released readers stream straight into the output wave
                // (the packed store's zero-allocation release path).
                let released = store.write_with(Addr(idx), value, |(rtag, port)| {
                    out.push(rtag, port, value);
                })?;
                self.istore_writes += 1;
                if traced {
                    trace(&TraceEvent::IStoreWrite { module: ptr.id });
                    trace(&TraceEvent::Presence {
                        module: ptr.id,
                        from: before.as_trace(),
                        to: PresenceState::Present,
                    });
                    if released > 0 {
                        trace(&TraceEvent::DeferRelease {
                            module: ptr.id,
                            released: released as u64,
                        });
                    }
                }
                for (rtag, port) in dests {
                    out.push(rtag, port, Value::Unit);
                }
            }
        }
        if sink.is_some() {
            for _ in out_before..out.len() {
                trace(&TraceEvent::TokenEmit { pe: 0 });
            }
        }
        Ok(())
    }

    fn store_mut(
        &mut self,
        tag: ActivityName,
        ptr: StructRef,
    ) -> Result<&mut IStructure<Value, (ActivityName, Port)>, ExecError> {
        self.structures
            .get_mut(ptr.id as usize)
            .ok_or(ExecError::BadTarget {
                activity: format!("{tag} (dangling {ptr:?})"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::{CodeBlockId, OpCode};
    use crate::value::{AluOp, CmpOp};

    fn run(g: GraphBuilder, inputs: &[Value]) -> EmuResult {
        let p = g.finish_program().expect("build");
        Emulator::new(&p).run(inputs).expect("run")
    }

    #[test]
    fn parse_relaxed_accepts_the_documented_spellings() {
        for on in ["1", "true", "on", "TRUE", "On"] {
            assert_eq!(parse_relaxed(on), Some(true), "{on:?}");
        }
        for off in ["", "0", "false", "off", "FALSE", "Off"] {
            assert_eq!(parse_relaxed(off), Some(false), "{off:?}");
        }
        for junk in ["yes", "2", "relaxed", "n o"] {
            assert_eq!(parse_relaxed(junk), None, "{junk:?}");
        }
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut g = GraphBuilder::new("t");
        let a = g.param();
        let b = g.param();
        let add = g.instr(OpCode::Alu(AluOp::Add));
        let sq = g.instr(OpCode::Alu(AluOp::Mul));
        let out = g.output(0);
        g.wire(a, add, 0).wire(b, add, 1);
        g.wire(add, sq, 0).wire(add, sq, 1);
        g.wire(sq, out, 0);
        let r = run(g, &[Value::Int(3), Value::Int(4)]);
        assert_eq!(r.outputs[&0], Value::Int(49));
        assert_eq!(r.instructions, 5); // 2 params + add + mul + output
        assert_eq!(r.alu_ops, 2);
    }

    #[test]
    fn parallel_adds_show_in_profile() {
        // Eight independent additions fire in one wave.
        let mut g = GraphBuilder::new("t");
        let x = g.param();
        for k in 0..8 {
            let add = g.instr_lit(OpCode::Alu(AluOp::Add), 1, Value::Int(k));
            let out = g.output(k as u32);
            g.wire(x, add, 0);
            g.wire(add, out, 0);
        }
        let r = run(g, &[Value::Int(10)]);
        assert_eq!(r.peak_parallelism(), 8);
        assert_eq!(r.outputs.len(), 8);
        assert_eq!(r.outputs[&7], Value::Int(17));
    }

    #[test]
    fn switch_routes_by_control() {
        let build = |flag: bool| {
            let mut g = GraphBuilder::new("t");
            let x = g.param();
            let c = g.lit(Value::Bool(flag));
            g.wire(x, c, 0);
            let sw = g.instr(OpCode::Switch);
            g.wire(x, sw, 0).wire(c, sw, 1);
            let t_out = g.output(0);
            let f_out = g.output(1);
            g.wire_true(sw, t_out, 0);
            g.wire_false(sw, f_out, 0);
            run(g, &[Value::Int(5)])
        };
        let r = build(true);
        assert_eq!(r.outputs.get(&0), Some(&Value::Int(5)));
        assert_eq!(r.outputs.get(&1), None);
        let r = build(false);
        assert_eq!(r.outputs.get(&0), None);
        assert_eq!(r.outputs.get(&1), Some(&Value::Int(5)));
    }

    #[test]
    fn loop_schema_runs_many_iterations() {
        // factorial via the full D/L/Switch/DInv schema
        let mut g = GraphBuilder::new("fact");
        let n = g.param();
        let one = g.lit(Value::Int(1));
        g.wire(n, one, 0);
        let exits = g
            .dataflow_loop(
                &[one, n],
                |g, tops| {
                    let c = g.instr_lit(OpCode::Cmp(CmpOp::Gt), 1, Value::Int(1));
                    g.wire(tops[1], c, 0);
                    c
                },
                |g, vars| {
                    let acc = g.instr(OpCode::Alu(AluOp::Mul));
                    g.wire(vars[0], acc, 0);
                    g.wire(vars[1], acc, 1);
                    let m = g.instr_lit(OpCode::Alu(AluOp::Sub), 1, Value::Int(1));
                    g.wire(vars[1], m, 0);
                    vec![acc, m]
                },
            )
            .unwrap();
        let out = g.output(0);
        g.wire(exits[0], out, 0);
        let r = run(g, &[Value::Int(10)]);
        assert_eq!(r.outputs[&0], Value::Int(3_628_800));
        assert!(r.contexts >= 2, "loop allocated a context");
    }

    #[test]
    fn procedure_call_roundtrips() {
        let mut g = GraphBuilder::new("main");
        // f(x) = x * x, called on 6
        let f = {
            let f = g.begin_block("square");
            let x = g.param();
            let m = g.instr(OpCode::Alu(AluOp::Mul));
            let ret = g.instr(OpCode::Return);
            g.wire(x, m, 0).wire(x, m, 1).wire(m, ret, 0);
            f
        };
        g.select_block(CodeBlockId(0));
        let a = g.param();
        let call = g.instr(OpCode::Apply { callee: f, argc: 1 });
        let out = g.output(0);
        g.wire(a, call, 0).wire(call, out, 0);
        let r = run(g, &[Value::Int(6)]);
        assert_eq!(r.outputs[&0], Value::Int(36));
        assert_eq!(r.contexts, 3); // program root + job root + one call
    }

    #[test]
    fn recursive_procedure() {
        // fib via recursion: fib(n) = n < 2 ? n : fib(n-1)+fib(n-2)
        let mut g = GraphBuilder::new("main");
        let fb = g.begin_block("fib");
        let n = g.param();
        let isbase = g.instr_lit(OpCode::Cmp(CmpOp::Lt), 1, Value::Int(2));
        g.wire(n, isbase, 0);
        let sw = g.instr(OpCode::Switch);
        g.wire(n, sw, 0).wire(isbase, sw, 1);
        // base: return n
        let ret_base = g.instr(OpCode::Return);
        g.wire_true(sw, ret_base, 0);
        // recursive: two applies
        let n1 = g.instr_lit(OpCode::Alu(AluOp::Sub), 1, Value::Int(1));
        let n2 = g.instr_lit(OpCode::Alu(AluOp::Sub), 1, Value::Int(2));
        g.wire_false(sw, n1, 0);
        g.wire_false(sw, n2, 0);
        let c1 = g.instr(OpCode::Apply {
            callee: fb,
            argc: 1,
        });
        let c2 = g.instr(OpCode::Apply {
            callee: fb,
            argc: 1,
        });
        g.wire(n1, c1, 0).wire(n2, c2, 0);
        let add = g.instr(OpCode::Alu(AluOp::Add));
        let ret = g.instr(OpCode::Return);
        g.wire(c1, add, 0).wire(c2, add, 1).wire(add, ret, 0);

        g.select_block(CodeBlockId(0));
        let x = g.param();
        let call = g.instr(OpCode::Apply {
            callee: fb,
            argc: 1,
        });
        let out = g.output(0);
        g.wire(x, call, 0).wire(call, out, 0);

        let r = run(g, &[Value::Int(12)]);
        assert_eq!(r.outputs[&0], Value::Int(144));
        // fib spawns exponentially many contexts; parallelism shows up.
        assert!(r.peak_parallelism() > 8);
    }

    #[test]
    fn istructure_producer_consumer_defers() {
        // Alloc a[1]; fetch a[0] *before* storing it; the deferred read
        // must still deliver.
        let mut g = GraphBuilder::new("t");
        let x = g.param();
        let size = g.lit(Value::Int(1));
        g.wire(x, size, 0);
        let alloc = g.instr(OpCode::IAlloc);
        g.wire(size, alloc, 0);
        // Fetch immediately (producer delayed through a chain of 5 ids).
        let fetch = g.instr_lit(OpCode::IFetch, 1, Value::Int(0));
        g.wire(alloc, fetch, 0);
        let out = g.output(0);
        g.wire(fetch, out, 0);
        // Slow producer path.
        let mut v = x;
        for _ in 0..5 {
            let id = g.instr(OpCode::Identity);
            g.wire(v, id, 0);
            v = id;
        }
        let store = g.instr_lit(OpCode::IStore, 1, Value::Int(0));
        g.wire(alloc, store, 0);
        g.wire(v, store, 2);
        let sink = g.instr(OpCode::Sink);
        g.wire(store, sink, 0);

        let r = run(g, &[Value::Int(99)]);
        assert_eq!(r.outputs[&0], Value::Int(99));
        assert_eq!(r.istore_deferred, 1, "the fetch must have been deferred");
        assert_eq!(r.istore_writes, 1);
    }

    #[test]
    fn sink_sees_a_conserved_token_ledger() {
        use ttda_trace::{shared, CountingSink};

        // Same producer/consumer graph as above, but traced: every token
        // the emulator creates must be consumed by halt, the deferred
        // read must appear and drain, and the fire count must match the
        // instruction count.
        let mut g = GraphBuilder::new("t");
        let x = g.param();
        let size = g.lit(Value::Int(1));
        g.wire(x, size, 0);
        let alloc = g.instr(OpCode::IAlloc);
        g.wire(size, alloc, 0);
        let fetch = g.instr_lit(OpCode::IFetch, 1, Value::Int(0));
        g.wire(alloc, fetch, 0);
        let out = g.output(0);
        g.wire(fetch, out, 0);
        let mut v = x;
        for _ in 0..5 {
            let id = g.instr(OpCode::Identity);
            g.wire(v, id, 0);
            v = id;
        }
        let store = g.instr_lit(OpCode::IStore, 1, Value::Int(0));
        g.wire(alloc, store, 0);
        g.wire(v, store, 2);
        let snk = g.instr(OpCode::Sink);
        g.wire(store, snk, 0);
        let p = g.finish_program().expect("build");

        let sink = shared(CountingSink::new());
        let r = Emulator::new(&p)
            .with_sink(sink.clone())
            .run(&[Value::Int(99)])
            .expect("run");
        let s = sink.borrow();
        let c = s.as_any().downcast_ref::<CountingSink>().unwrap();
        assert!(
            c.token_conservation_holds(),
            "emitted {} consumed {}",
            c.tokens_emitted(),
            c.tokens_consumed()
        );
        assert!(c.quiescent(), "deferred reads must drain by halt");
        let m = c.metrics();
        assert_eq!(m.counter_value("match_fire"), r.instructions);
        assert_eq!(m.counter_value("istore_read"), 1);
        assert_eq!(m.counter_value("istore_write"), 1);
        assert_eq!(m.counter_value("defer_enqueue"), 1);
        assert_eq!(m.counter_value("defer_release"), 1);
    }

    #[test]
    fn write_write_race_is_detected() {
        let mut g = GraphBuilder::new("t");
        let x = g.param();
        let size = g.lit(Value::Int(1));
        g.wire(x, size, 0);
        let alloc = g.instr(OpCode::IAlloc);
        g.wire(size, alloc, 0);
        for _ in 0..2 {
            let store = g.instr_lit(OpCode::IStore, 1, Value::Int(0));
            g.wire(alloc, store, 0);
            g.wire(x, store, 2);
            let sink = g.instr(OpCode::Sink);
            g.wire(store, sink, 0);
        }
        let p = g.finish_program().unwrap();
        let err = Emulator::new(&p).run(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, ExecError::IStructure(_)));
    }

    #[test]
    fn deadlock_reported_for_missing_operand() {
        let mut g = GraphBuilder::new("t");
        let x = g.param();
        let add = g.instr(OpCode::Alu(AluOp::Add)); // port 1 never arrives
        let out = g.output(0);
        g.wire(x, add, 0).wire(add, out, 0);
        let p = g.finish_program().unwrap();
        let err = Emulator::new(&p).run(&[Value::Int(1)]).unwrap_err();
        assert_eq!(err, ExecError::Deadlock { stranded: 1 });
    }

    #[test]
    fn input_arity_checked() {
        let mut g = GraphBuilder::new("t");
        let x = g.param();
        let out = g.output(0);
        g.wire(x, out, 0);
        let p = g.finish_program().unwrap();
        let err = Emulator::new(&p).run(&[]).unwrap_err();
        assert_eq!(
            err,
            ExecError::InputArity {
                expected: 1,
                got: 0
            }
        );
    }

    #[test]
    fn fuel_limit_enforced() {
        // Infinite loop: always-true predicate.
        let mut g = GraphBuilder::new("t");
        let n = g.param();
        let _ = g
            .dataflow_loop(
                &[n],
                |g, tops| {
                    let c = g.instr_lit(OpCode::Cmp(CmpOp::Ge), 1, Value::Int(0));
                    g.wire(tops[0], c, 0);
                    c
                },
                |g, vars| {
                    let inc = g.instr_lit(OpCode::Alu(AluOp::Add), 1, Value::Int(1));
                    g.wire(vars[0], inc, 0);
                    vec![inc]
                },
            )
            .unwrap();
        let p = g.finish_program().unwrap();
        let err = Emulator::new(&p)
            .with_fuel(10_000)
            .run(&[Value::Int(0)])
            .unwrap_err();
        assert_eq!(err, ExecError::OutOfFuel);
    }

    #[test]
    fn type_error_surfaces() {
        let mut g = GraphBuilder::new("t");
        let x = g.param();
        let not = g.instr(OpCode::Not);
        let out = g.output(0);
        g.wire(x, not, 0).wire(not, out, 0);
        let p = g.finish_program().unwrap();
        let err = Emulator::new(&p).run(&[Value::Int(3)]).unwrap_err();
        assert!(matches!(err, ExecError::Type(_)));
        assert!(err.to_string().contains("boolean"));
    }

    #[test]
    fn nested_loops_multiply() {
        // sum_{i=1..=3} sum_{j=1..=4} 1  == 12
        let mut g = GraphBuilder::new("t");
        let trig = g.param();
        let zero = g.lit(Value::Int(0));
        let one_i = g.lit(Value::Int(1));
        g.wire(trig, zero, 0);
        g.wire(trig, one_i, 0);
        let exits = g
            .dataflow_loop(
                &[zero, one_i],
                |g, tops| {
                    let c = g.instr_lit(OpCode::Cmp(CmpOp::Le), 1, Value::Int(3));
                    g.wire(tops[1], c, 0);
                    c
                },
                |g, vars| {
                    // inner loop: add 1 four times to the accumulator
                    let one_j = g.lit(Value::Int(1));
                    g.wire(vars[1], one_j, 0);
                    let inner = g
                        .dataflow_loop(
                            &[vars[0], one_j],
                            |g, tops| {
                                let c = g.instr_lit(OpCode::Cmp(CmpOp::Le), 1, Value::Int(4));
                                g.wire(tops[1], c, 0);
                                c
                            },
                            |g, ivars| {
                                let acc = g.instr_lit(OpCode::Alu(AluOp::Add), 1, Value::Int(1));
                                g.wire(ivars[0], acc, 0);
                                let j = g.instr_lit(OpCode::Alu(AluOp::Add), 1, Value::Int(1));
                                g.wire(ivars[1], j, 0);
                                vec![acc, j]
                            },
                        )
                        .unwrap();
                    let i = g.instr_lit(OpCode::Alu(AluOp::Add), 1, Value::Int(1));
                    g.wire(vars[1], i, 0);
                    vec![inner[0], i]
                },
            )
            .unwrap();
        let out = g.output(0);
        g.wire(exits[0], out, 0);
        let r = run(g, &[Value::Unit]);
        assert_eq!(r.outputs[&0], Value::Int(12));
    }
}

#[cfg(test)]
mod loop_bound_tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::OpCode;
    use crate::value::{AluOp, CmpOp};

    /// A counting loop whose iterations are coupled only by the control
    /// ring — the shape whose in-flight iteration count k-bounding
    /// exists to control.
    fn wide_loop() -> crate::graph::Program {
        let mut g = GraphBuilder::new("sum");
        let n_node = g.param();
        let zero = g.lit(Value::Int(0));
        let one = g.lit(Value::Int(1));
        g.wire(n_node, zero, 0);
        g.wire(n_node, one, 0);
        let exits = g
            .dataflow_loop(
                &[zero, one, n_node],
                |g, tops| {
                    let c = g.instr(OpCode::Cmp(CmpOp::Le));
                    g.wire(tops[1], c, 0);
                    g.wire(tops[2], c, 1);
                    c
                },
                |g, vars| {
                    let acc = g.instr(OpCode::Alu(AluOp::Add));
                    g.wire(vars[0], acc, 0);
                    g.wire(vars[1], acc, 1);
                    let i2 = g.instr_lit(OpCode::Alu(AluOp::Add), 1, Value::Int(1));
                    g.wire(vars[1], i2, 0);
                    vec![acc, i2, vars[2]]
                },
            )
            .unwrap();
        let out = g.output(0);
        g.wire(exits[0], out, 0);
        g.finish_program().unwrap()
    }

    #[test]
    fn bounded_loops_compute_the_same_answers() {
        let p = wide_loop();
        let want = Emulator::new(&p).run(&[Value::Int(50)]).unwrap().outputs[&0];
        for k in [1u32, 2, 4, 16, 1000] {
            let r = Emulator::new(&p)
                .with_loop_bound(k)
                .run(&[Value::Int(50)])
                .unwrap();
            assert_eq!(r.outputs[&0], want, "k={k}");
        }
    }

    #[test]
    fn tighter_bounds_lower_matching_occupancy() {
        let p = wide_loop();
        let run = |k: Option<u32>| {
            let mut e = Emulator::new(&p);
            if let Some(k) = k {
                e = e.with_loop_bound(k);
            }
            e.run(&[Value::Int(60)]).unwrap()
        };
        let unbounded = run(None);
        let k2 = run(Some(2));
        assert!(
            k2.peak_matching <= unbounded.peak_matching,
            "k=2 peak {} vs unbounded {}",
            k2.peak_matching,
            unbounded.peak_matching
        );
        // Bounding cannot shorten the critical path.
        assert!(k2.waves >= unbounded.waves);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_bound_panics() {
        let p = wide_loop();
        let _ = Emulator::new(&p).with_loop_bound(0);
    }
}
