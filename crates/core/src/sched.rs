//! Token scheduling policy: FIFO vs criticality-aware (DESIGN.md §15).
//!
//! Every engine holds ready tokens somewhere — the sequential emulator's
//! wave vector, the deterministic backend's pre-shard wave, the relaxed
//! workers' local queues, the timed machine's per-PE input queues. This
//! module decides the *order* those holders release tokens in:
//!
//! * [`SchedPolicy::Fifo`] — arrival order, the historical behaviour.
//! * [`SchedPolicy::Crit`] — longest-remaining-path first: tokens aimed
//!   at instructions with greater critical-path *height*
//!   ([`Analysis::height`](crate::opt::analysis::Analysis::height)) go
//!   first, because they gate longer dependence chains (Navada &
//!   Krishna's criticality-aware scheduling, applied to a tagged-token
//!   machine). Ties always break by arrival order, which keeps
//!   deterministic-mode results bit-identical across thread counts: the
//!   wave is stably reordered *before* wave indices are assigned, so the
//!   index-ordered merge is untouched.
//!
//! The process-wide default comes from `TTDA_SCHED=fifo|crit`
//! (case-insensitive, like `TTDA_RELAXED`); an unparsable value warns on
//! stderr once and falls back to FIFO, mirroring `TTDA_THREADS`.

use std::collections::VecDeque;

use crate::graph::Program;
use crate::tag::ActivityName;

/// How an engine orders its ready tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Arrival order (the classic ready queue).
    #[default]
    Fifo,
    /// Greatest remaining critical-path height first, arrival order on
    /// ties.
    Crit,
}

impl std::fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedPolicy::Fifo => write!(f, "fifo"),
            SchedPolicy::Crit => write!(f, "crit"),
        }
    }
}

/// Parses a `TTDA_SCHED` value, case-insensitively: `fifo` (or empty)
/// selects FIFO, `crit`/`criticality` selects criticality-aware;
/// anything else is unrecognized (`None`).
pub(crate) fn parse_sched(s: &str) -> Option<SchedPolicy> {
    match s.to_ascii_lowercase().as_str() {
        "" | "fifo" => Some(SchedPolicy::Fifo),
        "crit" | "criticality" => Some(SchedPolicy::Crit),
        _ => None,
    }
}

/// Scheduling-policy default: `TTDA_SCHED=crit` makes every engine
/// prioritize by criticality process-wide (read at construction time,
/// overridable per instance). An unrecognized value falls back to FIFO,
/// but says so on stderr once per process.
pub(crate) fn env_sched() -> SchedPolicy {
    match std::env::var("TTDA_SCHED") {
        Err(_) => SchedPolicy::Fifo,
        Ok(s) => match parse_sched(s.trim()) {
            Some(p) => p,
            None => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "ttda-core: TTDA_SCHED={s:?} is not a scheduling policy; \
                         staying FIFO (set fifo or crit)"
                    );
                });
                SchedPolicy::Fifo
            }
        },
    }
}

/// Per-program criticality lookup: `criticality(tag)` is the remaining
/// critical-path height of the instruction the token is aimed at.
///
/// Annotated blocks ([`CodeBlock::criticality`](crate::CodeBlock) from
/// `annotate_criticality`, attached by `compile_optimized`) are read
/// directly; unannotated blocks (hand-built graphs) get the same heights
/// computed once here, so `Crit` scheduling works on any program.
#[derive(Debug, Clone)]
pub(crate) struct CritMap {
    by_block: Vec<Vec<u32>>,
}

impl CritMap {
    /// Builds the lookup for `program` (only worth doing under
    /// [`SchedPolicy::Crit`]; FIFO engines never consult it).
    pub(crate) fn of(program: &Program) -> CritMap {
        CritMap {
            by_block: program
                .blocks
                .iter()
                .map(|b| {
                    if b.criticality.len() == b.instrs.len() {
                        b.criticality.clone()
                    } else {
                        crate::opt::analysis::Analysis::of(b).height
                    }
                })
                .collect(),
        }
    }

    /// The criticality of the instruction `tag` targets (0 for anything
    /// out of range — bad targets fail later, in execution, with a real
    /// error).
    #[inline]
    pub(crate) fn criticality(&self, tag: ActivityName) -> u32 {
        self.by_block
            .get(tag.c.0 as usize)
            .and_then(|v| v.get(tag.s.0 as usize))
            .copied()
            .unwrap_or(0)
    }
}

/// A deterministic bucketed priority queue: `pop` returns the
/// highest-priority item, FIFO *within* a priority level, so equal
/// priorities come out in arrival order — the tie-break the
/// deterministic-mode guarantee rests on.
///
/// Priorities are small dense integers (critical-path heights), so the
/// queue is a vector of rings indexed by priority plus a high-watermark:
/// push is O(1), pop is O(1) amortized (the watermark only walks down
/// over levels that were actually occupied). With every priority 0 this
/// is exactly a `VecDeque` — the FIFO engines pay one extra indirection,
/// nothing else.
#[derive(Debug, Clone)]
pub(crate) struct BucketQueue<T> {
    buckets: Vec<VecDeque<T>>,
    len: usize,
    /// Highest index that may hold items; everything above is empty.
    hi: usize,
}

impl<T> Default for BucketQueue<T> {
    fn default() -> Self {
        BucketQueue::new()
    }
}

impl<T> BucketQueue<T> {
    /// An empty queue.
    pub(crate) fn new() -> Self {
        BucketQueue {
            buckets: Vec::new(),
            len: 0,
            hi: 0,
        }
    }

    /// Enqueues `item` at `prio` (behind earlier same-priority items).
    pub(crate) fn push(&mut self, prio: u32, item: T) {
        let p = prio as usize;
        if p >= self.buckets.len() {
            self.buckets.resize_with(p + 1, VecDeque::new);
        }
        self.buckets[p].push_back(item);
        self.hi = self.hi.max(p);
        self.len += 1;
    }

    /// Dequeues the oldest item of the highest occupied priority.
    pub(crate) fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let mut i = self.hi;
        loop {
            if let Some(x) = self.buckets[i].pop_front() {
                self.hi = i;
                self.len -= 1;
                return Some(x);
            }
            debug_assert!(i > 0, "len > 0 but every bucket empty");
            i -= 1;
        }
    }

    /// Items currently queued, across all priorities.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::OpCode;
    use crate::value::{AluOp, Value};

    #[test]
    fn parse_sched_accepts_the_documented_spellings() {
        for fifo in ["", "fifo", "FIFO", "Fifo"] {
            assert_eq!(parse_sched(fifo), Some(SchedPolicy::Fifo), "{fifo:?}");
        }
        for crit in ["crit", "CRIT", "Crit", "criticality", "CRITICALITY"] {
            assert_eq!(parse_sched(crit), Some(SchedPolicy::Crit), "{crit:?}");
        }
        for junk in ["1", "priority", "lifo", "c r i t"] {
            assert_eq!(parse_sched(junk), None, "{junk:?}");
        }
        assert_eq!(SchedPolicy::default(), SchedPolicy::Fifo);
        assert_eq!(SchedPolicy::Crit.to_string(), "crit");
        assert_eq!(SchedPolicy::Fifo.to_string(), "fifo");
    }

    #[test]
    fn bucket_queue_pops_by_priority_then_arrival() {
        let mut q: BucketQueue<&str> = BucketQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(1, "b1-first");
        q.push(3, "d3");
        q.push(1, "b1-second");
        q.push(0, "a0");
        q.push(3, "e3");
        assert_eq!(q.len(), 5);
        // Highest priority first; ties in push order.
        assert_eq!(q.pop(), Some("d3"));
        assert_eq!(q.pop(), Some("e3"));
        // Interleave a late high-priority arrival.
        q.push(7, "late7");
        assert_eq!(q.pop(), Some("late7"));
        assert_eq!(q.pop(), Some("b1-first"));
        assert_eq!(q.pop(), Some("b1-second"));
        assert_eq!(q.pop(), Some("a0"));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn bucket_queue_at_one_priority_is_exactly_fifo() {
        let mut q: BucketQueue<u32> = BucketQueue::new();
        for k in 0..100 {
            q.push(0, k);
        }
        for k in 0..100 {
            assert_eq!(q.pop(), Some(k));
        }
    }

    #[test]
    fn critmap_prefers_the_annotation_and_recomputes_without_one() {
        let mut g = GraphBuilder::new("t");
        let x = g.param();
        let a = g.instr_lit(OpCode::Alu(AluOp::Add), 1, Value::Int(1));
        let out = g.output(0);
        g.wire(x, a, 0);
        g.wire(a, out, 0);
        let mut p = g.finish_program().unwrap();
        // Unannotated: heights are computed on demand (x=2, a=1, out=0).
        let m = CritMap::of(&p);
        let main = p.main;
        let tag = move |s: crate::graph::InstrId| ActivityName {
            u: crate::tag::Ctx(0),
            c: main,
            s,
            i: crate::tag::Iter::ONE,
        };
        assert_eq!(m.criticality(tag(x.instr())), 2);
        assert_eq!(m.criticality(tag(a.instr())), 1);
        assert_eq!(m.criticality(tag(out.instr())), 0);
        // Annotated: the stored vector is read back verbatim.
        crate::opt::annotate_criticality(&mut p);
        p.blocks[0].criticality[a.instr().0 as usize] = 9;
        let m = CritMap::of(&p);
        assert_eq!(m.criticality(tag(a.instr())), 9);
        // Out-of-range tags cost 0, not a panic.
        let bad = ActivityName {
            u: crate::tag::Ctx(0),
            c: crate::graph::CodeBlockId(99),
            s: crate::graph::InstrId(99),
            i: crate::tag::Iter::ONE,
        };
        assert_eq!(m.criticality(bad), 0);
    }
}
