//! A checked construction API for dataflow graphs.

use std::error::Error;
use std::fmt;

use crate::graph::{
    CodeBlock, CodeBlockId, Dest, DestBranch, GraphError, InstrId, Instruction, OpCode, Program,
};
use crate::tag::Port;
use crate::value::Value;

/// A handle to an instruction under construction. Carries its code block
/// so cross-block wiring (which the machine cannot execute) is caught at
/// build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId {
    pub(crate) block: CodeBlockId,
    pub(crate) id: InstrId,
}

impl NodeId {
    /// The instruction id this node will have in the finished program.
    pub fn instr(&self) -> InstrId {
        self.id
    }

    /// The code block this node belongs to.
    pub fn block(&self) -> CodeBlockId {
        self.block
    }
}

/// Errors detected while building a program.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// An edge connected instructions in different code blocks.
    CrossBlockWire {
        /// Source block.
        from: CodeBlockId,
        /// Destination block.
        to: CodeBlockId,
    },
    /// A loop body returned the wrong number of next-iteration values.
    LoopArity {
        /// Number of loop variables.
        vars: usize,
        /// Number of values the body produced.
        produced: usize,
    },
    /// Structural validation of the finished program failed.
    Graph(GraphError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::CrossBlockWire { from, to } => {
                write!(f, "cannot wire across code blocks ({from} -> {to})")
            }
            BuildError::LoopArity { vars, produced } => {
                write!(
                    f,
                    "loop body produced {produced} values for {vars} variables"
                )
            }
            BuildError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for BuildError {
    fn from(e: GraphError) -> Self {
        BuildError::Graph(e)
    }
}

/// Builds [`Program`]s instruction by instruction, with label-free
/// wiring, literal operands, and a helper that expands the paper's
/// complete loop schema (Fig 2-2's `D` / `L` / `Switch` / `D⁻¹`
/// arrangement).
///
/// The builder starts with one code block (which becomes `main`);
/// [`GraphBuilder::begin_block`] opens further blocks for procedures.
///
/// # Example
///
/// ```
/// use ttda_core::{AluOp, CmpOp, Emulator, GraphBuilder, OpCode, Value};
///
/// // sum 1..=n with the full tagged-token loop schema
/// let mut g = GraphBuilder::new("sum");
/// let n = g.param();
/// let one = g.lit(Value::Int(1));
/// let zero = g.lit(Value::Int(0));
/// g.wire(n, one, 0); // trigger the literals when input arrives
/// g.wire(n, zero, 0);
/// let exits = g
///     .dataflow_loop(
///         &[zero, one, n], // acc, i, n circulate
///         |g, tops| {
///             let c = g.instr(OpCode::Cmp(CmpOp::Le));
///             g.wire(tops[1], c, 0);
///             g.wire(tops[2], c, 1);
///             c
///         },
///         |g, vars| {
///             let acc = g.instr(OpCode::Alu(AluOp::Add));
///             g.wire(vars[0], acc, 0);
///             g.wire(vars[1], acc, 1);
///             let i2 = g.instr_lit(OpCode::Alu(AluOp::Add), 1, Value::Int(1));
///             g.wire(vars[1], i2, 0);
///             vec![acc, i2, vars[2]]
///         },
///     )
///     .unwrap();
/// let out = g.output(0);
/// g.wire(exits[0], out, 0);
/// let p = g.finish_program().unwrap();
///
/// let mut emu = Emulator::new(&p);
/// let r = emu.run(&[Value::Int(100)]).unwrap();
/// assert_eq!(r.outputs[&0], Value::Int(5050));
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    blocks: Vec<CodeBlock>,
    current: usize,
    next_loop_id: u32,
    errors: Vec<BuildError>,
}

impl GraphBuilder {
    /// Creates a builder whose first (current) block is `main_name`.
    pub fn new(main_name: &str) -> Self {
        GraphBuilder {
            blocks: vec![CodeBlock {
                name: main_name.to_string(),
                instrs: Vec::new(),
                params: Vec::new(),
                criticality: Vec::new(),
            }],
            current: 0,
            next_loop_id: 0,
            errors: Vec::new(),
        }
    }

    /// Opens a new code block and makes it current; returns its id (for
    /// `Apply`).
    pub fn begin_block(&mut self, name: &str) -> CodeBlockId {
        self.blocks.push(CodeBlock {
            name: name.to_string(),
            instrs: Vec::new(),
            params: Vec::new(),
            criticality: Vec::new(),
        });
        self.current = self.blocks.len() - 1;
        CodeBlockId((self.blocks.len() - 1) as u32)
    }

    /// Switches the current block.
    ///
    /// # Panics
    ///
    /// Panics if `block` was never created.
    pub fn select_block(&mut self, block: CodeBlockId) {
        assert!(
            (block.0 as usize) < self.blocks.len(),
            "unknown block {block}"
        );
        self.current = block.0 as usize;
    }

    /// The current block's id.
    pub fn current_block(&self) -> CodeBlockId {
        CodeBlockId(self.current as u32)
    }

    fn add(&mut self, instr: Instruction) -> NodeId {
        let block = self.current_block();
        let id = InstrId(self.blocks[self.current].instrs.len() as u32);
        self.blocks[self.current].instrs.push(instr);
        NodeId { block, id }
    }

    /// Adds an instruction.
    pub fn instr(&mut self, op: OpCode) -> NodeId {
        self.add(Instruction::new(op))
    }

    /// Adds an instruction with a literal operand at `port`.
    pub fn instr_lit(&mut self, op: OpCode, port: u8, value: Value) -> NodeId {
        self.add(Instruction::new(op).with_literal(Port(port), value))
    }

    /// Adds a constant generator: its *input* is a trigger token (value
    /// ignored) and its output is `value`. Wire any token into it to
    /// release the constant into the activation.
    pub fn lit(&mut self, value: Value) -> NodeId {
        self.add(Instruction::new(OpCode::Const(value)))
    }

    /// Adds a parameter entry to the current block; argument `k` of an
    /// invocation arrives at the `k`-th `param()`.
    pub fn param(&mut self) -> NodeId {
        let n = self.instr(OpCode::Identity);
        self.blocks[self.current].params.push(n.id);
        n
    }

    /// Adds a program output instruction for `slot`.
    pub fn output(&mut self, slot: u32) -> NodeId {
        self.instr(OpCode::Output(slot))
    }

    /// Wires `from`'s output to `to`'s operand `port`.
    pub fn wire(&mut self, from: NodeId, to: NodeId, port: u8) -> &mut Self {
        self.wire_when(from, to, port, DestBranch::Always)
    }

    /// Wires a `Switch`'s true output.
    pub fn wire_true(&mut self, from: NodeId, to: NodeId, port: u8) -> &mut Self {
        self.wire_when(from, to, port, DestBranch::IfTrue)
    }

    /// Wires a `Switch`'s false output.
    pub fn wire_false(&mut self, from: NodeId, to: NodeId, port: u8) -> &mut Self {
        self.wire_when(from, to, port, DestBranch::IfFalse)
    }

    fn wire_when(&mut self, from: NodeId, to: NodeId, port: u8, when: DestBranch) -> &mut Self {
        if from.block != to.block {
            self.errors.push(BuildError::CrossBlockWire {
                from: from.block,
                to: to.block,
            });
            return self;
        }
        self.blocks[from.block.0 as usize].instrs[from.id.0 as usize]
            .dests
            .push(Dest {
                instr: to.id,
                port: Port(port),
                when,
            });
        self
    }

    /// Reserves a fresh loop id for hand-built `D` instructions (every
    /// `D` of one loop must share an id). [`GraphBuilder::dataflow_loop`]
    /// allocates its own ids from the same counter, so the two never
    /// collide.
    pub fn fresh_loop_id(&mut self) -> u32 {
        let id = self.next_loop_id;
        self.next_loop_id += 1;
        id
    }

    /// Expands the complete tagged-token loop schema around `inits`:
    ///
    /// ```text
    ///   inits ─D─▶ top ─┬─▶ cond(tops) ─────────┐ (control)
    ///                   └─▶ Switch ◀────────────┘
    ///                        │ true        │ false
    ///                        ▼             ▼
    ///                   body(vars)       D⁻¹ ─▶ exits
    ///                        │ next
    ///                        ▼
    ///                        L ──▶ top (i+1)
    /// ```
    ///
    /// `cond` builds the continuation predicate from the loop-top values;
    /// `body` builds the next-iteration values from the switch-gated
    /// variables. Returns the exit nodes (post-`D⁻¹`, tagged back in the
    /// enclosing context), one per variable.
    ///
    /// # Errors
    ///
    /// Records [`BuildError::LoopArity`] (surfaced at
    /// [`GraphBuilder::finish_program`]) if `body` returns the wrong
    /// number of values; cross-block wires are detected as usual.
    pub fn dataflow_loop(
        &mut self,
        inits: &[NodeId],
        cond: impl FnOnce(&mut Self, &[NodeId]) -> NodeId,
        body: impl FnOnce(&mut Self, &[NodeId]) -> Vec<NodeId>,
    ) -> Result<Vec<NodeId>, BuildError> {
        let loop_id = self.next_loop_id;
        self.next_loop_id += 1;

        // Entry: one D per variable, all sharing loop_id, feeding a
        // loop-top junction (Identity) that L also re-enters.
        let tops: Vec<NodeId> = inits
            .iter()
            .map(|&init| {
                let d = self.instr(OpCode::D { loop_id });
                self.wire(init, d, 0);
                let top = self.instr(OpCode::Identity);
                self.wire(d, top, 0);
                top
            })
            .collect();

        let p = cond(self, &tops);

        // One Switch per variable, gated by the shared predicate.
        let mut vars = Vec::with_capacity(tops.len());
        let mut switches = Vec::with_capacity(tops.len());
        for &top in &tops {
            let sw = self.instr(OpCode::Switch);
            self.wire(top, sw, 0);
            self.wire(p, sw, 1);
            let body_in = self.instr(OpCode::Identity);
            self.wire_true(sw, body_in, 0);
            switches.push(sw);
            vars.push(body_in);
        }

        let next = body(self, &vars);
        if next.len() != tops.len() {
            let err = BuildError::LoopArity {
                vars: tops.len(),
                produced: next.len(),
            };
            self.errors.push(err.clone());
            return Err(err);
        }

        // Iterate: L back to the tops; exit: D⁻¹ from the false branches.
        let mut exits = Vec::with_capacity(tops.len());
        for (k, &nv) in next.iter().enumerate() {
            let l = self.instr(OpCode::L);
            self.wire(nv, l, 0);
            self.wire(l, tops[k], 0);
            let dinv = self.instr(OpCode::DInv);
            self.wire_false(switches[k], dinv, 0);
            exits.push(dinv);
        }
        Ok(exits)
    }

    /// Finishes and validates the program.
    ///
    /// # Errors
    ///
    /// Returns the first recorded wiring error, or any structural
    /// [`GraphError`] found by [`Program::validate`].
    pub fn finish_program(self) -> Result<Program, BuildError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let p = Program {
            blocks: self.blocks,
            main: CodeBlockId(0),
        };
        p.validate()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AluOp;

    #[test]
    fn simple_wiring_builds() {
        let mut g = GraphBuilder::new("t");
        let a = g.param();
        let b = g.param();
        let add = g.instr(OpCode::Alu(AluOp::Add));
        let out = g.output(0);
        g.wire(a, add, 0).wire(b, add, 1).wire(add, out, 0);
        let p = g.finish_program().unwrap();
        assert_eq!(p.instr_count(), 4);
        assert_eq!(p.blocks[0].params.len(), 2);
    }

    #[test]
    fn cross_block_wire_rejected() {
        let mut g = GraphBuilder::new("m");
        let a = g.param();
        g.begin_block("f");
        let b = g.param();
        g.wire(a, b, 0);
        assert!(matches!(
            g.finish_program(),
            Err(BuildError::CrossBlockWire { .. })
        ));
    }

    #[test]
    fn node_accessors() {
        let mut g = GraphBuilder::new("m");
        let a = g.param();
        assert_eq!(a.block(), CodeBlockId(0));
        assert_eq!(a.instr(), InstrId(0));
        let f = g.begin_block("f");
        assert_eq!(g.current_block(), f);
        g.select_block(CodeBlockId(0));
        assert_eq!(g.current_block(), CodeBlockId(0));
    }

    #[test]
    fn loop_arity_mismatch_caught() {
        let mut g = GraphBuilder::new("m");
        let n = g.param();
        let r = g.dataflow_loop(
            &[n],
            |g, tops| {
                let c = g.instr_lit(OpCode::Cmp(crate::value::CmpOp::Lt), 1, Value::Int(10));
                g.wire(tops[0], c, 0);
                c
            },
            |_, _| vec![], // wrong: zero next values for one var
        );
        assert!(matches!(
            r,
            Err(BuildError::LoopArity {
                vars: 1,
                produced: 0
            })
        ));
        let e = r.unwrap_err();
        assert!(e.to_string().contains("loop body"));
    }

    #[test]
    fn invalid_graph_surfaces_at_finish() {
        let mut g = GraphBuilder::new("m");
        let apply = g.instr(OpCode::Apply {
            callee: CodeBlockId(9),
            argc: 0,
        });
        let out = g.output(0);
        g.wire(apply, out, 0);
        assert!(matches!(g.finish_program(), Err(BuildError::Graph(_))));
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn select_unknown_block_panics() {
        let mut g = GraphBuilder::new("m");
        g.select_block(CodeBlockId(4));
    }
}
