//! The relaxed (non-deterministic) parallel backend — [`RunMode::Relaxed`].
//!
//! The deterministic backend ([`crate::par`]) pays for bit-identical
//! results with a wave barrier and an index-ordered merge on the
//! coordinator. This backend drops both: there is **no coordinator in
//! the steady state at all**. Each worker owns a waiting–matching shard
//! and an I-structure shard; tokens flow worker-to-worker over channels
//! the moment they are produced, wave fronts overlap freely, and the
//! run ends when a global in-flight counter reaches zero.
//!
//! # What is still guaranteed
//!
//! Dataflow graphs are determinate (Kahn): the *values* computed do not
//! depend on execution order, only the order itself does. Concretely,
//! for any program, a relaxed run agrees with a sequential run on:
//!
//! - program **outputs** (for [`Value::Ptr`] up to the structure *id* —
//!   relaxed ids come from leased blocks and are not dense);
//! - the **error discriminant** when the program faults;
//! - `instructions`, `alu_ops`, `contexts`, `istore_writes`, the total
//!   `istore_immediate + istore_deferred`, and the stranded-token count
//!   of a deadlock (all confluent);
//!
//! while `waves`/`profile` are reported as `0`/empty (there are no
//! waves to count), and `peak_matching`, `peak_deferred` and the
//! immediate/deferred *split* become schedule-dependent approximations
//! (sums of per-shard observations). The PR's fuzz oracle and property
//! suite check exactly this contract against the sequential engine.
//!
//! # Quiescence and errors
//!
//! Every token and every structure operation increments a shared
//! in-flight counter *before* it becomes visible (local queue, batch
//! buffer or channel) and decrements it *after* it is fully processed —
//! so the counter can only read zero when no work exists anywhere, and
//! zero is stable (new work is only created while processing old work).
//! Workers flush their batch buffers before blocking, poll the counter,
//! and exit when it reaches zero. The first error (in real time, not
//! program order — this is the relaxation) lands in a shared slot and
//! poisons the run; fuel is a shared firing counter checked on every
//! firing, so `OutOfFuel` still means "the program needed more than
//! `fuel` firings", the same condition the ordered backends enforce.
//!
//! # Causality of structure traffic
//!
//! An op on a structure must reach the owning shard before any op that
//! causally depends on it (`IAlloc` before a fetch through the pointer,
//! `IStore` before a fetch released by its completion signal). Workers
//! therefore flush, per batch cycle, **ops to every peer first, tokens
//! second**, and dispatch a firing's own op before routing its tokens.
//! Each hop is an mpsc send, and sends ordered by happens-before
//! enqueue in that order at the receiver, so the create/store is always
//! applied before the dependent fetch arrives.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Mutex;
use std::time::Duration;

use ttda_mem::{shard_of, IStructureShard};
use ttda_sim::Cycle;
use ttda_trace::{EventBuffer, SharedSink, TraceEvent};

use crate::context::{SharedContexts, WorkerCtx};
use crate::emu::EmuResult;
use crate::exec::{absorb, execute, StructAction};
use crate::graph::Program;
use crate::matching::MatchingStore;
use crate::par::{apply_one, worker_of, StructOp};
use crate::sched::{BucketQueue, CritMap, SchedPolicy};
use crate::tag::{ActivityName, Iter, Port, Token};
use crate::value::{StructRef, Value};
use crate::ExecError;

/// Structure ids a worker takes per refill of its private lease. Ids
/// are *not* dense (unused tail ids are simply never created) — they
/// escape only inside [`Value::Ptr`], whose id the relaxed contract
/// does not promise.
const STRUCT_LEASE: u32 = 64;

/// How long a drained worker sleeps in `recv_timeout` between
/// quiescence polls. Wake-ups are driven by message arrival; this only
/// bounds the latency of noticing global quiescence or poison.
const IDLE_POLL: Duration = Duration::from_micros(200);

/// A message between workers: a batch of structure ops for the
/// receiver's I-structure shard, or a batch of tokens for the
/// receiver's matching shard. Ops and tokens are separate variants
/// because the flush order between them carries the causality argument
/// (see the module docs).
enum Msg {
    Ops(Vec<ShardOp>),
    Tokens(Vec<Token>),
}

/// One unit of structure-shard work: register a freshly allocated id,
/// or apply a fetch/store.
enum ShardOp {
    Create { id: u32, len: usize },
    Op(StructOp),
}

/// State shared by all workers of one relaxed run.
struct Shared<'a> {
    program: &'a Program,
    ctxs: &'a SharedContexts,
    /// Tokens + ops produced but not yet fully processed, anywhere.
    in_flight: AtomicUsize,
    /// Successful firings so far — the fuel meter and the final
    /// `instructions` count.
    fired: AtomicU64,
    fuel: u64,
    /// Source of leased structure-id blocks.
    next_struct: AtomicU32,
    /// Set on the first error; workers exit promptly once they see it.
    poison: AtomicBool,
    first_err: Mutex<Option<ExecError>>,
    threads: usize,
    traced: bool,
    /// `Some` under [`SchedPolicy::Crit`]: workers pop their local
    /// queues longest-remaining-path first instead of in arrival order.
    crit: Option<CritMap>,
}

impl Shared<'_> {
    /// Records `e` as the run's error if it is the first, and poisons
    /// the run either way.
    fn fail(&self, e: ExecError) {
        let mut slot = self.first_err.lock().expect("error slot poisoned");
        if slot.is_none() {
            *slot = Some(e);
        }
        self.poison.store(true, Ordering::SeqCst);
    }
}

/// What one worker hands back when it exits.
struct WorkerOut {
    outputs: HashMap<u32, Value>,
    alu_ops: u64,
    /// Peak occupancy of this worker's matching shard.
    peak_matching: usize,
    /// Tokens stranded in this worker's matching shard at quiescence.
    stranded: usize,
    /// Peak and final deferred-reader counts of this worker's shard.
    peak_deferred: usize,
    deferred_outstanding: usize,
    istore_immediate: u64,
    istore_deferred: u64,
    istore_writes: u64,
    traces: EventBuffer,
}

/// Entry point: the relaxed equivalent of `Emulator::submit`. `fuel` is
/// the already-resolved batch budget.
pub(crate) fn submit(
    program: &Program,
    jobs: &[crate::machine::Job],
    threads: usize,
    fuel: u64,
    sched: SchedPolicy,
    sink: Option<SharedSink>,
) -> Result<EmuResult, ExecError> {
    debug_assert!(threads >= 1, "relaxed backend needs at least one worker");
    let ctxs = SharedContexts::new(program.main);
    // Seed tokens, sharded by matching owner. Roots are allocated here,
    // before any worker exists, so they get the same dense leading ids
    // the ordered backends assign.
    let mut seeds: Vec<Vec<Token>> = (0..threads).map(|_| Vec::new()).collect();
    let mut nseeds = 0usize;
    for job in jobs {
        let block = program.block(job.block).ok_or(ExecError::BadTarget {
            activity: job.block.to_string(),
        })?;
        if job.inputs.len() != block.params.len() {
            return Err(ExecError::InputArity {
                expected: block.params.len(),
                got: job.inputs.len(),
            });
        }
        let root = ctxs.new_root(job.block);
        for (k, v) in job.inputs.iter().enumerate() {
            let t = Token::new(
                ActivityName {
                    u: root,
                    c: job.block,
                    s: block.params[k],
                    i: Iter::ONE,
                },
                Port(0),
                *v,
            );
            seeds[worker_of(t.tag, threads)].push(t);
            nseeds += 1;
        }
    }
    if let Some(s) = &sink {
        let mut s = s.borrow_mut();
        for _ in 0..nseeds {
            s.record(Cycle::ZERO, &TraceEvent::TokenEmit { pe: 0 });
        }
    }

    let shared = Shared {
        program,
        ctxs: &ctxs,
        in_flight: AtomicUsize::new(nseeds),
        fired: AtomicU64::new(0),
        fuel,
        next_struct: AtomicU32::new(0),
        poison: AtomicBool::new(false),
        first_err: Mutex::new(None),
        threads,
        traced: sink.is_some(),
        crit: (sched == SchedPolicy::Crit).then(|| CritMap::of(program)),
    };

    let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..threads).map(|_| channel::<Msg>()).unzip();
        let handles: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(me, rx)| {
                let shared = &shared;
                let peers = txs.clone();
                scope.spawn(move || worker(shared, me, rx, peers))
            })
            .collect();
        for (w, seed) in seeds.into_iter().enumerate() {
            if !seed.is_empty() {
                txs[w].send(Msg::Tokens(seed)).expect("worker died at seed");
            }
        }
        drop(txs);
        handles
            .into_iter()
            .map(|h| h.join().expect("relaxed worker panicked"))
            .collect()
    });

    if let Some(e) = shared.first_err.into_inner().expect("error slot poisoned") {
        return Err(e);
    }
    let stranded = outs
        .iter()
        .map(|o| o.stranded + o.deferred_outstanding)
        .sum::<usize>();
    if stranded > 0 {
        return Err(ExecError::Deadlock { stranded });
    }

    let mut outputs = HashMap::new();
    let mut result = EmuResult {
        outputs: HashMap::new(),
        instructions: shared.fired.load(Ordering::SeqCst),
        alu_ops: 0,
        waves: 0,
        profile: Vec::new(),
        contexts: ctxs.allocated(),
        peak_matching: 0,
        peak_deferred: 0,
        istore_immediate: 0,
        istore_deferred: 0,
        istore_writes: 0,
    };
    for mut o in outs {
        outputs.extend(o.outputs.drain());
        result.alu_ops += o.alu_ops;
        result.peak_matching += o.peak_matching;
        result.peak_deferred += o.peak_deferred;
        result.istore_immediate += o.istore_immediate;
        result.istore_deferred += o.istore_deferred;
        result.istore_writes += o.istore_writes;
        if let Some(s) = &sink {
            o.traces.replay_into(s);
        }
    }
    result.outputs = outputs;
    if let Some(s) = &sink {
        s.borrow_mut()
            .record(Cycle::ZERO, &TraceEvent::Halt { in_flight: 0 });
    }
    Ok(result)
}

/// Everything one relaxed worker owns.
struct Worker<'a, 'p> {
    shared: &'a Shared<'p>,
    me: usize,
    waiting: MatchingStore,
    shard: IStructureShard<Value, (ActivityName, Port)>,
    wctx: WorkerCtx<'a>,
    /// Private structure-id lease, refilled from the shared counter.
    struct_next: u32,
    struct_end: u32,
    /// Tokens owned by this worker's matching shard, pending
    /// absorption. FIFO under [`SchedPolicy::Fifo`] (everything lands
    /// at priority 0); a criticality-bucketed priority queue under
    /// [`SchedPolicy::Crit`].
    local: BucketQueue<Token>,
    /// Outbound batches, one slot per peer (own slots stay empty — own
    /// work is dispatched inline).
    obufs: Vec<Vec<ShardOp>>,
    tbufs: Vec<Vec<Token>>,
    peers: Vec<Sender<Msg>>,
    out: WorkerOut,
}

/// One relaxed worker: absorb and fire tokens from the local queue,
/// batch outbound traffic, flush before blocking, exit on global
/// quiescence or poison.
fn worker(shared: &Shared<'_>, me: usize, rx: Receiver<Msg>, peers: Vec<Sender<Msg>>) -> WorkerOut {
    let threads = shared.threads;
    let mut w = Worker {
        shared,
        me,
        waiting: MatchingStore::new(),
        shard: IStructureShard::new(),
        wctx: shared.ctxs.handle(),
        struct_next: 0,
        struct_end: 0,
        local: BucketQueue::new(),
        obufs: (0..threads).map(|_| Vec::new()).collect(),
        tbufs: (0..threads).map(|_| Vec::new()).collect(),
        peers,
        out: WorkerOut {
            outputs: HashMap::new(),
            alu_ops: 0,
            peak_matching: 0,
            stranded: 0,
            peak_deferred: 0,
            deferred_outstanding: 0,
            istore_immediate: 0,
            istore_deferred: 0,
            istore_writes: 0,
            traces: EventBuffer::new(),
        },
    };
    loop {
        while let Some(t) = w.local.pop() {
            w.process_token(t);
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            if shared.poison.load(Ordering::SeqCst) {
                break;
            }
        }
        w.flush();
        if shared.poison.load(Ordering::SeqCst) {
            break;
        }
        match rx.try_recv() {
            Ok(msg) => {
                w.handle(msg);
                continue;
            }
            Err(TryRecvError::Disconnected) => break,
            Err(TryRecvError::Empty) => {}
        }
        if shared.in_flight.load(Ordering::SeqCst) == 0 {
            break;
        }
        match rx.recv_timeout(IDLE_POLL) {
            Ok(msg) => w.handle(msg),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    w.out.stranded = w.waiting.len();
    w.out.deferred_outstanding = w.shard.deferred_outstanding();
    w.out
}

impl Worker<'_, '_> {
    fn trace(&mut self, ev: TraceEvent) {
        if self.shared.traced {
            self.out.traces.push(Cycle::ZERO, ev);
        }
    }

    /// Local-queue priority of a token: its target's remaining
    /// critical-path height under `Crit`, a constant 0 under `Fifo`
    /// (which makes [`BucketQueue`] exactly a FIFO ring).
    fn prio(&self, tag: ActivityName) -> u32 {
        self.shared.crit.as_ref().map_or(0, |c| c.criticality(tag))
    }

    /// Routes a freshly produced token to its matching shard's owner,
    /// charging it to the in-flight counter first.
    fn route(&mut self, t: Token) {
        self.trace(TraceEvent::TokenEmit { pe: self.me as u32 });
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let w = worker_of(t.tag, self.shared.threads);
        if w == self.me {
            self.local.push(self.prio(t.tag), t);
        } else {
            self.tbufs[w].push(t);
        }
    }

    /// Dispatches a structure op to its owning shard — inline when this
    /// worker owns the structure, batched otherwise.
    fn dispatch_op(&mut self, tag: ActivityName, action: StructAction) {
        let ptr_id = match &action {
            StructAction::Fetch { ptr, .. } | StructAction::Store { ptr, .. } => ptr.id,
            StructAction::Alloc { .. } => unreachable!("allocations are resolved by the firer"),
        };
        let op = StructOp {
            index: 0,
            tag,
            action,
        };
        let owner = shard_of(ptr_id, self.shared.threads);
        if owner == self.me {
            self.apply_op(op);
        } else {
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            self.obufs[owner].push(ShardOp::Op(op));
        }
    }

    /// Registers a newly allocated structure with its owning shard.
    fn dispatch_create(&mut self, id: u32, len: usize) {
        let owner = shard_of(id, self.shared.threads);
        if owner == self.me {
            self.shard.create(id, len);
        } else {
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            self.obufs[owner].push(ShardOp::Create { id, len });
        }
    }

    /// Applies one fetch/store against the local shard, routing any
    /// produced tokens (fetched values, released readers).
    fn apply_op(&mut self, op: StructOp) {
        let res = apply_one(
            &mut self.shard,
            op,
            Cycle::ZERO,
            self.shared.traced,
            &mut self.out.istore_immediate,
            &mut self.out.istore_deferred,
            &mut self.out.istore_writes,
        );
        match res {
            Ok(out) => {
                for (c, ev) in out.traces.events() {
                    self.out.traces.push(*c, *ev);
                }
                for t in out.tokens {
                    self.route(t);
                }
                self.out.peak_deferred = self
                    .out
                    .peak_deferred
                    .max(self.shard.deferred_outstanding());
            }
            Err((_, e)) => self.shared.fail(e),
        }
    }

    /// Takes a structure id from the private lease, refilling it from
    /// the shared counter when exhausted.
    fn take_struct_id(&mut self) -> u32 {
        if self.struct_next == self.struct_end {
            self.struct_next = self
                .shared
                .next_struct
                .fetch_add(STRUCT_LEASE, Ordering::SeqCst);
            self.struct_end = self.struct_next + STRUCT_LEASE;
        }
        let id = self.struct_next;
        self.struct_next += 1;
        id
    }

    /// Absorbs one token into the local matching shard and executes the
    /// firing it enables, if any.
    fn process_token(&mut self, token: Token) {
        self.trace(TraceEvent::TokenConsume { pe: self.me as u32 });
        let enabled = match absorb(self.shared.program, &mut self.waiting, token) {
            Ok(enabled) => enabled,
            Err(e) => {
                self.shared.fail(e);
                return;
            }
        };
        self.out.peak_matching = self.out.peak_matching.max(self.waiting.len());
        let Some((tag, operands)) = enabled else {
            let occupancy = self.waiting.len() as u64;
            self.trace(TraceEvent::MatchWait {
                pe: self.me as u32,
                occupancy,
            });
            return;
        };
        let instr = self
            .shared
            .program
            .block(tag.c)
            .and_then(|b| b.instr(tag.s))
            .expect("absorb resolved the instruction");
        let mut eff = match execute(self.shared.program, &mut self.wctx, tag, instr, &operands) {
            Ok(eff) => eff,
            Err(e) => {
                self.shared.fail(e);
                return;
            }
        };
        let fired = self.shared.fired.fetch_add(1, Ordering::SeqCst) + 1;
        if fired > self.shared.fuel {
            self.shared.fail(ExecError::OutOfFuel);
            return;
        }
        if eff.is_alu {
            self.out.alu_ops += 1;
        }
        self.trace(TraceEvent::MatchFire {
            pe: self.me as u32,
            alu: eff.is_alu,
            busy: 0,
        });
        if let Some((slot, v)) = eff.output.take() {
            self.out.outputs.insert(slot, v);
        }
        // Dispatch the structure op *before* routing any token of this
        // firing: a consumer reached through a token may issue a
        // dependent op, and the dependency must already be in the
        // owner's queue (see the module docs on causality).
        match eff.action.take() {
            None => {}
            Some(StructAction::Alloc { len, dests }) => {
                let id = self.take_struct_id();
                self.dispatch_create(id, len);
                let p = Value::Ptr(StructRef {
                    id,
                    len: len as u32,
                });
                for (rtag, port) in dests {
                    self.route(Token::new(rtag, port, p));
                }
            }
            Some(StructAction::Fetch { ptr, idx, dests }) => {
                self.dispatch_op(tag, StructAction::Fetch { ptr, idx, dests });
            }
            Some(StructAction::Store {
                ptr,
                idx,
                value,
                dests,
            }) => {
                // The completion signal is emitted here, by the firer:
                // the op is flushed before the token, so a fetch the
                // signal unlocks cannot overtake the store.
                self.dispatch_op(
                    tag,
                    StructAction::Store {
                        ptr,
                        idx,
                        value,
                        dests: Vec::new(),
                    },
                );
                for (rtag, port) in dests {
                    self.route(Token::new(rtag, port, Value::Unit));
                }
            }
        }
        for t in std::mem::take(&mut eff.tokens) {
            self.route(t);
        }
    }

    /// Flushes outbound batches: ops to every peer first, then tokens —
    /// the order the causality argument rests on.
    fn flush(&mut self) {
        for w in 0..self.shared.threads {
            if !self.obufs[w].is_empty() {
                // A failed send means the peer exited on poison; the
                // batch no longer matters.
                let _ = self.peers[w].send(Msg::Ops(std::mem::take(&mut self.obufs[w])));
            }
        }
        for w in 0..self.shared.threads {
            if !self.tbufs[w].is_empty() {
                let _ = self.peers[w].send(Msg::Tokens(std::mem::take(&mut self.tbufs[w])));
            }
        }
    }

    fn handle(&mut self, msg: Msg) {
        match msg {
            Msg::Ops(ops) => {
                for op in ops {
                    match op {
                        ShardOp::Create { id, len } => self.shard.create(id, len),
                        ShardOp::Op(op) => self.apply_op(op),
                    }
                    self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Msg::Tokens(ts) => {
                for t in ts {
                    self.local.push(self.prio(t.tag), t);
                }
            }
        }
    }
}
