//! Runtime values carried on tokens.

use std::error::Error;
use std::fmt;

/// A handle to an I-structure allocated at run time.
///
/// Tokens "carry only pointers to the structure" (§2.2.4); the machine's
/// structure table maps the id to the storage modules that hold the
/// elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructRef {
    /// Allocation id, unique within one program run.
    pub id: u32,
    /// Number of elements.
    pub len: u32,
}

impl fmt::Display for StructRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "istruct#{}[{}]", self.id, self.len)
    }
}

/// A datum on a token.
///
/// The TTDA is dynamically typed at the hardware level: every token
/// carries a value whose type the consuming instruction checks. Mixed
/// int/float arithmetic promotes to float, as the Id language does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// The unit value, used by signal/trigger tokens.
    Unit,
    /// A boolean (produced by comparisons, consumed by `Switch`).
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A pointer to an I-structure.
    Ptr(StructRef),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Ptr(p) => write!(f, "{p}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A type mismatch detected at instruction firing time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// What the operation needed.
    pub expected: &'static str,
    /// What arrived, rendered.
    pub got: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expected {}, got {}", self.expected, self.got)
    }
}

impl Error for TypeError {}

fn type_err(expected: &'static str, got: &Value) -> TypeError {
    TypeError {
        expected,
        got: got.to_string(),
    }
}

/// Arithmetic operations on [`Value`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division. Integer division by zero is a [`TypeError`]-class
    /// runtime error; float division follows IEEE.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl AluOp {
    /// Applies the operation with Id-style numeric promotion.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] for non-numeric operands or integer
    /// division by zero.
    pub fn apply(self, a: &Value, b: &Value) -> Result<Value, TypeError> {
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => match self {
                AluOp::Add => Ok(Value::Int(x.wrapping_add(*y))),
                AluOp::Sub => Ok(Value::Int(x.wrapping_sub(*y))),
                AluOp::Mul => Ok(Value::Int(x.wrapping_mul(*y))),
                AluOp::Div => {
                    if *y == 0 {
                        Err(TypeError {
                            expected: "nonzero divisor",
                            got: "0".into(),
                        })
                    } else {
                        Ok(Value::Int(x.wrapping_div(*y)))
                    }
                }
                AluOp::Min => Ok(Value::Int(*x.min(y))),
                AluOp::Max => Ok(Value::Int(*x.max(y))),
            },
            _ => {
                let x = as_float(a)?;
                let y = as_float(b)?;
                Ok(Value::Float(match self {
                    AluOp::Add => x + y,
                    AluOp::Sub => x - y,
                    AluOp::Mul => x * y,
                    AluOp::Div => x / y,
                    AluOp::Min => x.min(y),
                    AluOp::Max => x.max(y),
                }))
            }
        }
    }
}

/// Relational operations (produce [`Value::Bool`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Applies the comparison (numeric, with promotion; booleans compare
    /// with `Eq`/`Ne` only).
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] for incomparable operands.
    pub fn apply(self, a: &Value, b: &Value) -> Result<Value, TypeError> {
        if let (Value::Bool(x), Value::Bool(y)) = (a, b) {
            return match self {
                CmpOp::Eq => Ok(Value::Bool(x == y)),
                CmpOp::Ne => Ok(Value::Bool(x != y)),
                _ => Err(TypeError {
                    expected: "numbers for ordered comparison",
                    got: "bool".into(),
                }),
            };
        }
        if let (Value::Int(x), Value::Int(y)) = (a, b) {
            return Ok(Value::Bool(match self {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            }));
        }
        let x = as_float(a)?;
        let y = as_float(b)?;
        Ok(Value::Bool(match self {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }))
    }
}

/// Coerces a numeric value to `f64`.
///
/// # Errors
///
/// Returns a [`TypeError`] for non-numeric values.
pub(crate) fn as_float(v: &Value) -> Result<f64, TypeError> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Float(x) => Ok(*x),
        other => Err(type_err("a number", other)),
    }
}

/// Extracts a boolean.
///
/// # Errors
///
/// Returns a [`TypeError`] for non-boolean values.
pub(crate) fn as_bool(v: &Value) -> Result<bool, TypeError> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(type_err("a boolean", other)),
    }
}

/// Extracts an integer (floats are not silently truncated).
///
/// # Errors
///
/// Returns a [`TypeError`] for non-integer values.
pub(crate) fn as_int(v: &Value) -> Result<i64, TypeError> {
    match v {
        Value::Int(i) => Ok(*i),
        other => Err(type_err("an integer", other)),
    }
}

/// Extracts a structure pointer.
///
/// # Errors
///
/// Returns a [`TypeError`] for non-pointer values.
pub(crate) fn as_ptr(v: &Value) -> Result<StructRef, TypeError> {
    match v {
        Value::Ptr(p) => Ok(*p),
        other => Err(type_err("an i-structure pointer", other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arith() {
        assert_eq!(
            AluOp::Add.apply(&Value::Int(2), &Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            AluOp::Sub.apply(&Value::Int(2), &Value::Int(3)).unwrap(),
            Value::Int(-1)
        );
        assert_eq!(
            AluOp::Mul.apply(&Value::Int(4), &Value::Int(3)).unwrap(),
            Value::Int(12)
        );
        assert_eq!(
            AluOp::Div.apply(&Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            AluOp::Min.apply(&Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            AluOp::Max.apply(&Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn mixed_arith_promotes() {
        assert_eq!(
            AluOp::Add
                .apply(&Value::Int(1), &Value::Float(0.5))
                .unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            AluOp::Div
                .apply(&Value::Float(1.0), &Value::Int(4))
                .unwrap(),
            Value::Float(0.25)
        );
    }

    #[test]
    fn int_div_by_zero_is_error() {
        assert!(AluOp::Div.apply(&Value::Int(1), &Value::Int(0)).is_err());
        // Float division by zero is IEEE infinity, not an error.
        assert_eq!(
            AluOp::Div
                .apply(&Value::Float(1.0), &Value::Float(0.0))
                .unwrap(),
            Value::Float(f64::INFINITY)
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            CmpOp::Lt.apply(&Value::Int(1), &Value::Int(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            CmpOp::Ge.apply(&Value::Float(2.0), &Value::Int(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            CmpOp::Eq
                .apply(&Value::Bool(true), &Value::Bool(true))
                .unwrap(),
            Value::Bool(true)
        );
        assert!(CmpOp::Lt
            .apply(&Value::Bool(true), &Value::Bool(false))
            .is_err());
        assert!(CmpOp::Eq.apply(&Value::Unit, &Value::Int(1)).is_err());
    }

    #[test]
    fn extractors() {
        assert!(as_bool(&Value::Bool(true)).unwrap());
        assert!(as_bool(&Value::Int(1)).is_err());
        assert_eq!(as_int(&Value::Int(4)).unwrap(), 4);
        assert!(as_int(&Value::Float(4.0)).is_err());
        let p = StructRef { id: 3, len: 10 };
        assert_eq!(as_ptr(&Value::Ptr(p)).unwrap(), p);
        assert!(as_ptr(&Value::Unit).is_err());
        let e = as_ptr(&Value::Int(1)).unwrap_err();
        assert!(e.to_string().contains("pointer"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(
            Value::Ptr(StructRef { id: 1, len: 4 }).to_string(),
            "istruct#1[4]"
        );
        assert_eq!(Value::from(2i64), Value::Int(2));
        assert_eq!(Value::from(0.5), Value::Float(0.5));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
