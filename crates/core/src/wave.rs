//! Struct-of-arrays wave storage (DESIGN.md §15).
//!
//! A wave used to be `Vec<Token>` — an array of three-field structs.
//! The hot loops only ever look at one field at a time: the k-bounding
//! eligibility scan and the shard router read *tags*, the criticality
//! sort reads *tags*, operand delivery reads *ports* and *values*. A
//! struct-of-arrays layout keeps each of those scans on its own packed,
//! contiguous array — the same argument that moved the waiting–matching
//! and I-structure stores to packed layouts in PRs 3/4, applied to the
//! tokens themselves. `ActivityName`, `Port`, and `Value` are all
//! `Copy`, so gathers and permutations are plain word moves.
//!
//! [`Token`] remains the interchange type at every API boundary (sinks,
//! matching store, cross-thread channels); a `Wave` materializes one on
//! demand.

use std::cmp::Reverse;

use crate::sched::CritMap;
use crate::tag::{ActivityName, Port, Token};
use crate::value::Value;

/// One wave of in-flight tokens, stored as three parallel arrays.
#[derive(Debug, Clone, Default)]
pub(crate) struct Wave {
    tags: Vec<ActivityName>,
    ports: Vec<Port>,
    values: Vec<Value>,
}

impl Wave {
    /// An empty wave.
    pub(crate) fn new() -> Wave {
        Wave::default()
    }

    /// Tokens currently in the wave.
    pub(crate) fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the wave holds no tokens.
    pub(crate) fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Appends one token from its parts.
    pub(crate) fn push(&mut self, tag: ActivityName, port: Port, value: Value) {
        self.tags.push(tag);
        self.ports.push(port);
        self.values.push(value);
    }

    /// Appends an interchange [`Token`].
    pub(crate) fn push_token(&mut self, t: Token) {
        self.push(t.tag, t.port, t.value);
    }

    /// Appends every token of `ts`.
    pub(crate) fn extend_tokens(&mut self, ts: impl IntoIterator<Item = Token>) {
        for t in ts {
            self.push_token(t);
        }
    }

    /// The packed tag column (the only column the eligibility and
    /// routing scans touch).
    pub(crate) fn tags(&self) -> &[ActivityName] {
        &self.tags
    }

    /// Materializes token `i`.
    pub(crate) fn token(&self, i: usize) -> Token {
        Token::new(self.tags[i], self.ports[i], self.values[i])
    }

    /// Materializing iterator over the wave, front to back.
    #[cfg(test)]
    pub(crate) fn iter_tokens(&self) -> impl Iterator<Item = Token> + '_ {
        (0..self.len()).map(|i| self.token(i))
    }

    /// Keeps the tokens whose *tag* satisfies `keep`, preserving order;
    /// the rejected ones are appended to `spill` (the k-bounding
    /// holding-pen transfer). Compacts all three columns in one pass.
    pub(crate) fn retain_or_spill(
        &mut self,
        mut keep: impl FnMut(&ActivityName) -> bool,
        spill: &mut Vec<Token>,
    ) {
        let mut w = 0usize;
        for r in 0..self.tags.len() {
            if keep(&self.tags[r]) {
                self.tags[w] = self.tags[r];
                self.ports[w] = self.ports[r];
                self.values[w] = self.values[r];
                w += 1;
            } else {
                spill.push(self.token(r));
            }
        }
        self.tags.truncate(w);
        self.ports.truncate(w);
        self.values.truncate(w);
    }

    /// Stably reorders the wave by descending criticality of each
    /// token's target instruction. Stability is the determinism
    /// tie-break: equal-criticality tokens keep their arrival (wave
    /// index) order, so a `Crit` schedule is a pure function of the
    /// graph and the previous wave — identical on every engine at every
    /// thread count.
    pub(crate) fn sort_by_criticality(&mut self, crit: &CritMap) {
        let n = self.len();
        if n < 2 {
            return;
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&i| Reverse(crit.criticality(self.tags[i as usize])));
        self.tags = order.iter().map(|&i| self.tags[i as usize]).collect();
        self.ports = order.iter().map(|&i| self.ports[i as usize]).collect();
        self.values = order.iter().map(|&i| self.values[i as usize]).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::graph::{CodeBlockId, InstrId, OpCode};
    use crate::tag::{Ctx, Iter};
    use crate::value::AluOp;

    fn tag(s: u32) -> ActivityName {
        ActivityName {
            u: Ctx(0),
            c: CodeBlockId(0),
            s: InstrId(s),
            i: Iter::ONE,
        }
    }

    #[test]
    fn push_retain_and_materialize_round_trip() {
        let mut w = Wave::new();
        assert!(w.is_empty());
        for s in 0..6u32 {
            w.push(tag(s), Port(0), Value::Int(s as i64));
        }
        assert_eq!(w.len(), 6);
        assert_eq!(w.token(3), Token::new(tag(3), Port(0), Value::Int(3)));
        let mut spill = Vec::new();
        w.retain_or_spill(|t| t.s.0 % 2 == 0, &mut spill);
        assert_eq!(
            w.iter_tokens().map(|t| t.tag.s.0).collect::<Vec<_>>(),
            [0, 2, 4]
        );
        assert_eq!(
            spill.iter().map(|t| t.tag.s.0).collect::<Vec<_>>(),
            [1, 3, 5]
        );
        w.extend_tokens(spill);
        assert_eq!(w.len(), 6);
    }

    #[test]
    fn criticality_sort_is_stable_within_equal_heights() {
        // x -> a -> out: heights x=2, a=1, out=0. Two tokens per target,
        // pushed interleaved; the sort must group by height descending
        // while keeping each pair's push order.
        let mut g = GraphBuilder::new("t");
        let x = g.param();
        let a = g.instr_lit(OpCode::Alu(AluOp::Add), 1, Value::Int(1));
        let out = g.output(0);
        g.wire(x, a, 0);
        g.wire(a, out, 0);
        let p = g.finish_program().unwrap();
        let crit = CritMap::of(&p);
        let mut w = Wave::new();
        for (k, n) in [out.instr(), x.instr(), a.instr(), x.instr(), out.instr()]
            .iter()
            .enumerate()
        {
            w.push(
                ActivityName {
                    u: Ctx(0),
                    c: p.main,
                    s: *n,
                    i: Iter::ONE,
                },
                Port(0),
                Value::Int(k as i64),
            );
        }
        w.sort_by_criticality(&crit);
        let order: Vec<(u32, Value)> = w.iter_tokens().map(|t| (t.tag.s.0, t.value)).collect();
        assert_eq!(
            order,
            vec![
                (x.instr().0, Value::Int(1)),
                (x.instr().0, Value::Int(3)),
                (a.instr().0, Value::Int(2)),
                (out.instr().0, Value::Int(0)),
                (out.instr().0, Value::Int(4)),
            ]
        );
    }
}
