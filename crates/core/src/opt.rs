//! Graph optimization passes.
//!
//! The Id compiler's output is deliberately schematic — one `Identity`
//! junction per loop variable, one per conditional branch input, one per
//! parameter fork — which keeps codegen simple but costs a machine cycle
//! per junction per activation. [`optimize`] applies the two passes a
//! real dataflow compiler would:
//!
//! 1. **Identity forwarding**: an `Identity` with no literal simply
//!    re-emits its input, so every edge `S →(w) I` plus `I → T` composes
//!    to `S →(w) T`; the junction disappears. (Parameter entries are
//!    kept — they are the block's input ports.)
//! 2. **Dead-code elimination**: instructions with no destinations and no
//!    side effects (pure ALU/compare/tag ops, absorbers) can never affect
//!    the program's outputs; removing them may strand their producers,
//!    so the pass iterates to a fixed point.
//!
//! Both passes preserve semantics exactly — the optimizer's test suite
//! re-runs every workload and compares results and I-structure traffic
//! against the unoptimized graph.

use std::collections::HashMap;

use crate::graph::{CodeBlock, Dest, InstrId, OpCode, Program};

/// What [`optimize`] did, per pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// `Identity` junctions removed by forwarding.
    pub identities_collapsed: usize,
    /// Dead instructions removed.
    pub dead_removed: usize,
}

/// Optimizes a program; returns the new program and what changed.
///
/// The input should be valid (from
/// [`GraphBuilder`](crate::GraphBuilder) or [`crate::Program::validate`]);
/// the output is revalidated by debug assertion.
pub fn optimize(program: &Program) -> (Program, OptStats) {
    let mut stats = OptStats::default();
    let blocks = program
        .blocks
        .iter()
        .map(|b| optimize_block(b, &mut stats))
        .collect();
    let out = Program {
        blocks,
        main: program.main,
    };
    debug_assert_eq!(out.validate(), Ok(()), "optimizer broke the graph");
    (out, stats)
}

fn is_pure(op: &OpCode) -> bool {
    matches!(
        op,
        OpCode::Identity
            | OpCode::Const(_)
            | OpCode::Alu(_)
            | OpCode::Cmp(_)
            | OpCode::Not
            | OpCode::And
            | OpCode::Or
            | OpCode::Switch
            | OpCode::L
            | OpCode::LInv
            | OpCode::D { .. }
            | OpCode::DInv
            | OpCode::Sink
            | OpCode::IFetch
    )
}

fn optimize_block(block: &CodeBlock, stats: &mut OptStats) -> CodeBlock {
    let mut instrs = block.instrs.clone();
    let params = block.params.clone();
    let is_param = |id: usize| params.iter().any(|p| p.0 as usize == id);

    // --- Pass 1: identity forwarding (to a fixed point, to collapse
    // chains). An Identity is collapsible if it has no literal and is not
    // a parameter entry.
    loop {
        let collapsible: Option<usize> = instrs.iter().enumerate().position(|(i, ins)| {
            ins.op == OpCode::Identity && ins.literal.is_none() && !is_param(i) && {
                // Self-loops through the identity (possible in principle)
                // are not collapsible.
                ins.dests.iter().all(|d| d.instr.0 as usize != i)
            }
        });
        let Some(victim) = collapsible else { break };
        let victim_dests = instrs[victim].dests.clone();
        // Rewire every edge into the victim.
        for src in instrs.iter_mut() {
            let mut new_dests = Vec::with_capacity(src.dests.len());
            for d in &src.dests {
                if d.instr.0 as usize == victim {
                    for vd in &victim_dests {
                        new_dests.push(Dest {
                            instr: vd.instr,
                            port: vd.port,
                            when: d.when, // compose: identity out-edges are Always
                        });
                    }
                } else {
                    new_dests.push(*d);
                }
            }
            src.dests = new_dests;
        }
        // The victim keeps its slot but becomes unreachable dead code;
        // clear its dests so DCE can take it.
        instrs[victim].dests.clear();
        instrs[victim].op = OpCode::Sink;
        instrs[victim].nt = 1;
        stats.identities_collapsed += 1;
    }

    // --- Pass 2: iterative DCE. An instruction is dead if pure with no
    // destinations; remove edges into dead instructions, repeat.
    let mut dead = vec![false; instrs.len()];
    loop {
        let mut changed = false;
        for (i, ins) in instrs.iter().enumerate() {
            if dead[i] || is_param(i) {
                continue;
            }
            let live_dests = ins
                .dests
                .iter()
                .filter(|d| !dead[d.instr.0 as usize])
                .count();
            if live_dests == 0 && is_pure(&ins.op) {
                dead[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    stats.dead_removed += dead.iter().filter(|&&d| d).count();

    // --- Renumber: compact live instructions and remap ids.
    let mut remap: HashMap<u32, u32> = HashMap::new();
    let mut new_instrs = Vec::new();
    for (i, ins) in instrs.iter().enumerate() {
        if !dead[i] {
            remap.insert(i as u32, new_instrs.len() as u32);
            new_instrs.push(ins.clone());
        }
    }
    for ins in &mut new_instrs {
        ins.dests = ins
            .dests
            .iter()
            .filter(|d| !dead[d.instr.0 as usize])
            .map(|d| Dest {
                instr: InstrId(remap[&d.instr.0]),
                ..*d
            })
            .collect();
    }
    let new_params = params.iter().map(|p| InstrId(remap[&p.0])).collect();

    CodeBlock {
        name: block.name.clone(),
        instrs: new_instrs,
        params: new_params,
    }
}

/// Convenience: compile-quality check that two programs compute the same
/// outputs on the given inputs (used by tests and by callers who want to
/// verify an optimization).
///
/// # Panics
///
/// Panics if either program fails to run.
pub fn assert_equivalent(a: &Program, b: &Program, inputs: &[crate::Value]) {
    let ra = crate::Emulator::new(a).run(inputs).expect("program a runs");
    let rb = crate::Emulator::new(b).run(inputs).expect("program b runs");
    assert_eq!(ra.outputs, rb.outputs, "optimization changed results");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::value::{AluOp, CmpOp};
    use crate::{Emulator, OpCode, Value};

    fn sum_loop() -> Program {
        let mut g = GraphBuilder::new("sum");
        let n = g.param();
        let zero = g.lit(Value::Int(0));
        let one = g.lit(Value::Int(1));
        g.wire(n, zero, 0);
        g.wire(n, one, 0);
        let exits = g
            .dataflow_loop(
                &[zero, one, n],
                |g, tops| {
                    let c = g.instr(OpCode::Cmp(CmpOp::Le));
                    g.wire(tops[1], c, 0);
                    g.wire(tops[2], c, 1);
                    c
                },
                |g, vars| {
                    let acc = g.instr(OpCode::Alu(AluOp::Add));
                    g.wire(vars[0], acc, 0);
                    g.wire(vars[1], acc, 1);
                    let i2 = g.instr_lit(OpCode::Alu(AluOp::Add), 1, Value::Int(1));
                    g.wire(vars[1], i2, 0);
                    vec![acc, i2, vars[2]]
                },
            )
            .unwrap();
        let out = g.output(0);
        g.wire(exits[0], out, 0);
        g.finish_program().unwrap()
    }

    #[test]
    fn optimized_loop_is_equivalent_and_smaller() {
        let p = sum_loop();
        let (opt, stats) = optimize(&p);
        assert!(stats.identities_collapsed > 0, "loop tops collapse");
        assert!(opt.instr_count() < p.instr_count());
        for n in [0i64, 1, 10, 100] {
            assert_equivalent(&p, &opt, &[Value::Int(n)]);
        }
        // And the optimized program executes fewer firings.
        let before = Emulator::new(&p)
            .run(&[Value::Int(50)])
            .unwrap()
            .instructions;
        let after = Emulator::new(&opt)
            .run(&[Value::Int(50)])
            .unwrap()
            .instructions;
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn dead_pure_chains_removed() {
        let mut g = GraphBuilder::new("t");
        let x = g.param();
        // Live path.
        let inc = g.instr_lit(OpCode::Alu(AluOp::Add), 1, Value::Int(1));
        let out = g.output(0);
        g.wire(x, inc, 0);
        g.wire(inc, out, 0);
        // Dead chain: three pure ops going nowhere.
        let d1 = g.instr_lit(OpCode::Alu(AluOp::Mul), 1, Value::Int(2));
        let d2 = g.instr(OpCode::Identity);
        let d3 = g.instr_lit(OpCode::Cmp(CmpOp::Lt), 1, Value::Int(9));
        g.wire(x, d1, 0);
        g.wire(d1, d2, 0);
        g.wire(d2, d3, 0);
        let p = g.finish_program().unwrap();
        let (opt, stats) = optimize(&p);
        assert!(stats.dead_removed >= 3, "{stats:?}");
        assert_equivalent(&p, &opt, &[Value::Int(4)]);
    }

    #[test]
    fn stores_and_outputs_never_removed() {
        let mut g = GraphBuilder::new("t");
        let x = g.param();
        let size = g.lit(Value::Int(1));
        g.wire(x, size, 0);
        let alloc = g.instr(OpCode::IAlloc);
        g.wire(size, alloc, 0);
        let st = g.instr_lit(OpCode::IStore, 1, Value::Int(0));
        g.wire(alloc, st, 0);
        g.wire(x, st, 2);
        let sink = g.instr(OpCode::Sink);
        g.wire(st, sink, 0);
        let f = g.instr_lit(OpCode::IFetch, 1, Value::Int(0));
        g.wire(alloc, f, 0);
        let out = g.output(0);
        g.wire(f, out, 0);
        let p = g.finish_program().unwrap();
        let (opt, _) = optimize(&p);
        // The store must survive (the fetch depends on it at run time,
        // invisibly to the graph).
        assert!(opt.blocks[0].instrs.iter().any(|i| i.op == OpCode::IStore));
        assert_equivalent(&p, &opt, &[Value::Int(9)]);
    }

    #[test]
    fn params_survive_even_when_unused() {
        let mut g = GraphBuilder::new("t");
        let _unused = g.param();
        let y = g.param();
        let out = g.output(0);
        g.wire(y, out, 0);
        let p = g.finish_program().unwrap();
        let (opt, _) = optimize(&p);
        assert_eq!(opt.blocks[0].params.len(), 2);
        assert_equivalent(&p, &opt, &[Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn switch_branch_wiring_composes_through_identities() {
        // x > 0 ? x+1 : x-1 via explicit identities on both branches.
        let mut g = GraphBuilder::new("t");
        let x = g.param();
        let c = g.instr_lit(OpCode::Cmp(CmpOp::Gt), 1, Value::Int(0));
        g.wire(x, c, 0);
        let sw = g.instr(OpCode::Switch);
        g.wire(x, sw, 0);
        g.wire(c, sw, 1);
        let t_id = g.instr(OpCode::Identity);
        let e_id = g.instr(OpCode::Identity);
        g.wire_true(sw, t_id, 0);
        g.wire_false(sw, e_id, 0);
        let plus = g.instr_lit(OpCode::Alu(AluOp::Add), 1, Value::Int(1));
        let minus = g.instr_lit(OpCode::Alu(AluOp::Sub), 1, Value::Int(1));
        g.wire(t_id, plus, 0);
        g.wire(e_id, minus, 0);
        let join = g.instr(OpCode::Identity);
        g.wire(plus, join, 0);
        g.wire(minus, join, 0);
        let out = g.output(0);
        g.wire(join, out, 0);
        let p = g.finish_program().unwrap();
        let (opt, stats) = optimize(&p);
        assert!(stats.identities_collapsed >= 3);
        for v in [-5i64, 0, 7] {
            assert_equivalent(&p, &opt, &[Value::Int(v)]);
        }
    }
}
