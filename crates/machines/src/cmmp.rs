//! C.mmp: minicomputers on a crossbar into shared memory (§1.2.1).

use ttda_mem::cache::{CacheConfig, CoherenceStats, CoherentSystem};
use ttda_mem::{Addr, MemOp, MemoryModule};
use ttda_net::{Crossbar, Fabric, FabricConfig, NodeId, Topology};
use ttda_sim::Cycle;
use ttda_vn::{Core, CoreError, MemAccess, MemRef, RunConfig};

use crate::smp::{Smp, SmpStats};

/// Configuration for a [`Cmmp`] machine.
#[derive(Debug, Clone)]
pub struct CmmpConfig {
    /// Number of processors (C.mmp had 16).
    pub procs: usize,
    /// Memory banks behind the crossbar.
    pub banks: usize,
    /// Memory access time.
    pub mem_access: Cycle,
    /// Crossbar timing ("the switch speed was comparable to the speed of
    /// a local memory reference").
    pub fabric: FabricConfig,
    /// Per-processor caches, if fitted. C.mmp's design called for them
    /// but only one was ever built — enabling this shows why.
    pub caches: Option<CacheConfig>,
    /// Cache line size in words (for address→line mapping).
    pub line_words: usize,
    /// Processor timing.
    pub run: RunConfig,
}

impl Default for CmmpConfig {
    fn default() -> Self {
        CmmpConfig {
            procs: 16,
            banks: 16,
            mem_access: Cycle(4),
            fabric: FabricConfig {
                link_service: Cycle(1),
                switch_delay: Cycle(1),
                injection_delay: Cycle(0),
            },
            caches: None,
            line_words: 4,
            run: RunConfig::default(),
        }
    }
}

struct CmmpModel {
    fabric: Fabric<Crossbar>,
    memory: MemoryModule<()>,
    caches: Option<CoherentSystem>,
    line_words: usize,
    procs: usize,
}

impl crate::smp::LatencyModel for CmmpModel {
    fn latency(&mut self, proc: usize, r: &MemRef, now: Cycle) -> Cycle {
        if let Some(caches) = &mut self.caches {
            // Atomics bypass the cache (they must be globally visible),
            // everything else goes through the coherent hierarchy.
            let line = Addr(r.addr.0 / self.line_words);
            match r.op {
                MemAccess::Atomic => {
                    let arrive = self.fabric.send(now, NodeId(proc), self.mem_port(r.addr));
                    let done = self.memory.access_time(arrive, r.addr, MemOp::Read);
                    (done - now) + (arrive - now) // there and back
                }
                MemAccess::Load | MemAccess::FeLoad => caches.read(proc, line),
                MemAccess::Store | MemAccess::FeStore => caches.write(proc, line),
            }
        } else {
            // Cacheless C.mmp: every reference crosses the crossbar to a
            // memory bank and back.
            let arrive = self.fabric.send(now, NodeId(proc), self.mem_port(r.addr));
            let served = self.memory.access_time(
                arrive,
                r.addr,
                match r.op {
                    MemAccess::Store | MemAccess::FeStore => MemOp::Write,
                    _ => MemOp::Read,
                },
            );
            // Return trip mirrors the request path cost.
            let one_way = arrive - now;
            (served - now) + one_way
        }
    }
}

impl CmmpModel {
    fn mem_port(&self, addr: Addr) -> NodeId {
        // Memory ports share the crossbar's port space with processors in
        // this model; bank b answers on port b mod ports.
        NodeId(addr.0 % self.procs)
    }
}

/// The C.mmp machine: [`Smp`] cores + crossbar + banked shared memory,
/// optionally with coherent per-processor caches.
///
/// # Example
///
/// ```
/// use ttda_machines::{Cmmp, CmmpConfig};
/// use ttda_vn::{AluOp, Core, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg(1), 10).load(Reg(2), Reg(1), 0).halt();
/// let prog = b.build()?;
/// let cfg = CmmpConfig { procs: 4, ..CmmpConfig::default() };
/// let mut machine = Cmmp::new(vec![Core::new(prog.clone()); 4], cfg);
/// let stats = machine.run()?;
/// assert!(stats.completed);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Cmmp {
    smp: Smp,
    config: CmmpConfig,
    coherence: Option<CoherenceStats>,
}

impl Cmmp {
    /// Builds the machine; one core per processor.
    ///
    /// # Panics
    ///
    /// Panics if `cores.len() != config.procs` or `procs == 0`.
    pub fn new(cores: Vec<Core>, config: CmmpConfig) -> Self {
        assert_eq!(cores.len(), config.procs, "one core per processor");
        assert!(config.procs > 0, "need processors");
        let smp = Smp::new(cores, ttda_vn::FlatMemory::new(1 << 16), config.run);
        Cmmp {
            smp,
            config,
            coherence: None,
        }
    }

    /// The crossbar's crosspoint count (the quadratic cost of §1.2.1).
    pub fn switch_cost(&self) -> u64 {
        Crossbar::new(self.config.procs)
            .expect("procs > 0")
            .hardware_cost()
    }

    /// Runs all processors to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from any processor.
    pub fn run(&mut self) -> Result<SmpStats, CoreError> {
        let xbar = Crossbar::new(self.config.procs).expect("procs > 0");
        let mut model = CmmpModel {
            fabric: Fabric::new(xbar, self.config.fabric),
            memory: MemoryModule::new(0, self.config.banks, self.config.mem_access),
            caches: self
                .config
                .caches
                .map(|c| CoherentSystem::new(self.config.procs, c)),
            line_words: self.config.line_words.max(1),
            procs: self.config.procs,
        };
        let stats = self.smp.run(&mut model)?;
        self.coherence = model.caches.map(|c| c.stats().clone());
        Ok(stats)
    }

    /// Coherence statistics from the last cached run, if caches were
    /// fitted.
    pub fn coherence(&self) -> Option<&CoherenceStats> {
        self.coherence.as_ref()
    }

    /// Post-run core access.
    pub fn core(&self, proc: usize) -> &Core {
        self.smp.core(proc)
    }

    /// Post-run shared-memory access.
    pub fn memory_mut(&mut self) -> &mut ttda_vn::FlatMemory {
        self.smp.memory_mut()
    }

    /// The number of ports the crossbar serves.
    pub fn ports(&self) -> usize {
        Crossbar::new(self.config.procs).expect("procs > 0").ports()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttda_vn::{AluOp, Cond, DataMemory, ProgramBuilder, Reg};

    /// Each processor bumps a shared counter `k` times with FETCH-AND-ADD.
    fn counter_program(k: i64) -> ttda_vn::Program {
        let (one, i, n, t) = (Reg(1), Reg(2), Reg(3), Reg(4));
        let mut b = ProgramBuilder::new();
        b.li(one, 1).li(i, 0).li(n, k).li(Reg(5), 500);
        b.label("l");
        b.fetch_add(t, Reg(5), 0, one);
        b.alui(AluOp::Add, i, i, 1);
        b.branch(Cond::Lt, i, n, "l");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn shared_counter_is_exact() {
        let cfg = CmmpConfig {
            procs: 8,
            ..CmmpConfig::default()
        };
        let cores = vec![Core::new(counter_program(10)); 8];
        let mut m = Cmmp::new(cores, cfg);
        let stats = m.run().unwrap();
        assert!(stats.completed);
        assert_eq!(m.smp.memory_mut().load(Addr(500)).unwrap(), 80);
    }

    /// Each processor repeatedly loads and stores one shared word —
    /// migratory sharing, the coherence worst case.
    fn sharing_program(k: i64) -> ttda_vn::Program {
        let (i, n, t, a) = (Reg(2), Reg(3), Reg(4), Reg(5));
        let mut b = ProgramBuilder::new();
        b.li(i, 0).li(n, k).li(a, 600);
        b.label("l");
        b.load(t, a, 0);
        b.alui(AluOp::Add, t, t, 1);
        b.store(t, a, 0);
        b.alui(AluOp::Add, i, i, 1);
        b.branch(Cond::Lt, i, n, "l");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn caches_track_coherence_traffic() {
        let cfg = CmmpConfig {
            procs: 4,
            caches: Some(CacheConfig::default()),
            ..CmmpConfig::default()
        };
        let cores = vec![Core::new(sharing_program(5)); 4];
        let mut m = Cmmp::new(cores, cfg);
        m.run().unwrap();
        let c = m.coherence().expect("caches fitted");
        assert!(c.reads + c.writes > 0);
        assert!(c.invalidations > 0, "migratory sharing must invalidate");
    }

    #[test]
    fn cacheless_run_has_no_coherence_stats() {
        let cfg = CmmpConfig {
            procs: 2,
            ..CmmpConfig::default()
        };
        let mut m = Cmmp::new(vec![Core::new(counter_program(2)); 2], cfg);
        m.run().unwrap();
        assert!(m.coherence().is_none());
    }

    #[test]
    fn switch_cost_quadratic() {
        let cfg4 = CmmpConfig {
            procs: 4,
            ..CmmpConfig::default()
        };
        let cfg16 = CmmpConfig {
            procs: 16,
            ..CmmpConfig::default()
        };
        let m4 = Cmmp::new(vec![Core::new(counter_program(1)); 4], cfg4);
        let m16 = Cmmp::new(vec![Core::new(counter_program(1)); 16], cfg16);
        assert_eq!(m4.switch_cost() * 16, m16.switch_cost());
        assert_eq!(m16.ports(), 16);
    }

    #[test]
    #[should_panic(expected = "one core per processor")]
    fn core_count_mismatch_panics() {
        let cfg = CmmpConfig {
            procs: 4,
            ..CmmpConfig::default()
        };
        let _ = Cmmp::new(vec![Core::new(counter_program(1)); 2], cfg);
    }
}
