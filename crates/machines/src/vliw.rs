//! A VLIW machine in the ELI-512 mold (§1.2.4).
//!
//! "A smart compiler ... is able to fold many parallel operations into a
//! single machine cycle." The model has two halves: a **list scheduler**
//! that packs a dependence DAG into wide instruction words at compile
//! time, and an **executor** that replays the schedule — stalling the
//! *entire machine* whenever a memory operation takes longer than the
//! compiler assumed, because a lockstep horizontal architecture has no
//! way to slip one operation. That stall behaviour is exactly the
//! paper's charge: these machines "are not suited at all to ... anything
//! which relies on the ability to efficiently switch contexts".

use ttda_sim::{Cycle, SimRng};

/// The operation classes the scheduler distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Register-to-register arithmetic: always the compiler's assumed
    /// latency.
    Alu,
    /// A memory reference: the compiler schedules it at the *hit*
    /// latency; at run time it may miss.
    Mem,
    /// A control transfer: at most one per word (the jump mechanism
    /// is shared), which limits packing of branchy code.
    Branch,
}

/// A dependence DAG of operations to schedule.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    kinds: Vec<OpKind>,
    deps: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an operation depending on earlier ops; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id is not smaller than the new op's id
    /// (the graph must be topologically constructed).
    pub fn op(&mut self, kind: OpKind, deps: &[usize]) -> usize {
        let id = self.kinds.len();
        assert!(deps.iter().all(|&d| d < id), "deps must precede the op");
        self.kinds.push(kind);
        self.deps.push(deps.to_vec());
        id
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }
}

/// A compiled schedule: one `Vec<usize>` of op ids per long instruction
/// word.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The long instruction words, in issue order.
    pub words: Vec<Vec<usize>>,
    kinds: Vec<OpKind>,
}

impl Schedule {
    /// Instruction-level parallelism achieved: ops per word.
    pub fn ilp(&self) -> f64 {
        if self.words.is_empty() {
            0.0
        } else {
            self.kinds.len() as f64 / self.words.len() as f64
        }
    }
}

/// What an execution replay measured.
#[derive(Debug, Clone, Copy)]
pub struct VliwStats {
    /// Total cycles including stalls.
    pub cycles: Cycle,
    /// Cycles lost to memory-miss stalls (the whole machine waits).
    pub stall_cycles: Cycle,
    /// Words issued.
    pub words: u64,
    /// Achieved operations per cycle.
    pub ops_per_cycle: f64,
}

/// The machine: issue width, per-word branch limit, and timing.
#[derive(Debug, Clone, Copy)]
pub struct Vliw {
    /// Functional-unit slots per long word (ELI-512 had 16 clusters).
    pub width: usize,
    /// Branches per word.
    pub max_branches: usize,
    /// The latency the compiler assumes for every memory op (a hit).
    pub mem_hit: Cycle,
    /// Extra cycles a miss costs at run time (whole-machine stall).
    pub miss_penalty: Cycle,
}

impl Default for Vliw {
    fn default() -> Self {
        Vliw {
            width: 16,
            max_branches: 1,
            mem_hit: Cycle(1),
            miss_penalty: Cycle(20),
        }
    }
}

impl Vliw {
    /// Greedy list scheduling: each word takes as many ready ops as the
    /// width (and branch limit) allow; an op is ready once all its
    /// dependencies have issued in *earlier* words.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn schedule(&self, g: &DepGraph) -> Schedule {
        assert!(self.width > 0, "zero-width machine");
        let n = g.len();
        let mut issued = vec![false; n];
        let mut word_of = vec![usize::MAX; n];
        let mut words: Vec<Vec<usize>> = Vec::new();
        let mut remaining = n;
        while remaining > 0 {
            let wi = words.len();
            let mut word = Vec::new();
            let mut branches = 0;
            for op in 0..n {
                if issued[op] || word.len() >= self.width {
                    continue;
                }
                if g.deps[op].iter().any(|&d| !issued[d] || word_of[d] == wi) {
                    continue;
                }
                if g.kinds[op] == OpKind::Branch {
                    if branches >= self.max_branches {
                        continue;
                    }
                    branches += 1;
                }
                issued[op] = true;
                word_of[op] = wi;
                word.push(op);
                remaining -= 1;
            }
            assert!(!word.is_empty(), "cyclic dependence graph");
            words.push(word);
        }
        Schedule {
            words,
            kinds: g.kinds.clone(),
        }
    }

    /// Replays a schedule with run-time memory behaviour: each memory op
    /// misses with probability `p_miss`, and any miss in a word stalls
    /// the whole machine for the penalty (misses in one word overlap —
    /// the memory system is pipelined; the *machine* is not).
    pub fn execute(&self, s: &Schedule, p_miss: f64, rng: &mut SimRng) -> VliwStats {
        let mut cycles = Cycle::ZERO;
        let mut stalls = Cycle::ZERO;
        for word in &s.words {
            cycles += Cycle(1);
            let mut word_mem = Cycle::ZERO;
            for &op in word {
                if s.kinds[op] == OpKind::Mem {
                    let extra = if rng.chance(p_miss) {
                        self.mem_hit + self.miss_penalty
                    } else {
                        self.mem_hit
                    };
                    word_mem = word_mem.max(extra);
                }
            }
            // The compiler budgeted mem_hit into the pipeline; anything
            // beyond it is a stall.
            let over = word_mem.saturating_sub(self.mem_hit);
            stalls += over;
            cycles += over;
        }
        let total_ops = s.kinds.len() as f64;
        VliwStats {
            cycles,
            stall_cycles: stalls,
            words: s.words.len() as u64,
            ops_per_cycle: if cycles == Cycle::ZERO {
                0.0
            } else {
                total_ops / cycles.as_u64() as f64
            },
        }
    }
}

/// A regular numeric kernel: `chains` independent chains of
/// `ops_per_chain` dependent ALU ops fed by one load each — unrolled
/// loop bodies, the workload VLIW thrives on.
pub fn regular_kernel(chains: usize, ops_per_chain: usize) -> DepGraph {
    let mut g = DepGraph::new();
    for _ in 0..chains {
        let mut prev = g.op(OpKind::Mem, &[]);
        for _ in 0..ops_per_chain {
            prev = g.op(OpKind::Alu, &[prev]);
        }
    }
    g
}

/// A pointer-chasing kernel: `chains` independent chains of `loads`
/// *dependent* memory operations each — the workload where a static
/// schedule meets dynamic latency head-on.
pub fn memory_chain_kernel(chains: usize, loads: usize) -> DepGraph {
    let mut g = DepGraph::new();
    for _ in 0..chains {
        let mut prev: Option<usize> = None;
        for _ in 0..loads {
            let deps: Vec<usize> = prev.into_iter().collect();
            prev = Some(g.op(OpKind::Mem, &deps));
        }
    }
    g
}

/// Irregular, branchy code: a serial chain where every other op is a
/// data-dependent branch — the workload the paper says these machines
/// cannot handle.
pub fn branchy_kernel(length: usize) -> DepGraph {
    let mut g = DepGraph::new();
    let mut prev = None;
    for i in 0..length {
        let kind = if i % 2 == 0 {
            OpKind::Alu
        } else {
            OpKind::Branch
        };
        let deps: Vec<usize> = prev.into_iter().collect();
        prev = Some(g.op(kind, &deps));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_respects_dependences() {
        let mut g = DepGraph::new();
        let a = g.op(OpKind::Alu, &[]);
        let b = g.op(OpKind::Alu, &[a]);
        let c = g.op(OpKind::Alu, &[a]);
        let d = g.op(OpKind::Alu, &[b, c]);
        let s = Vliw::default().schedule(&g);
        let word_of = |op: usize| s.words.iter().position(|w| w.contains(&op)).unwrap();
        assert!(word_of(a) < word_of(b));
        assert!(word_of(a) < word_of(c));
        assert!(word_of(d) > word_of(b));
        assert!(word_of(d) > word_of(c));
        assert_eq!(word_of(b), word_of(c), "independent ops pack together");
    }

    #[test]
    fn regular_code_achieves_high_ilp() {
        let g = regular_kernel(16, 8);
        let m = Vliw {
            width: 16,
            ..Vliw::default()
        };
        let s = m.schedule(&g);
        assert!(s.ilp() > 8.0, "ilp = {}", s.ilp());
    }

    #[test]
    fn branchy_code_achieves_no_ilp() {
        let g = branchy_kernel(40);
        let m = Vliw {
            width: 16,
            ..Vliw::default()
        };
        let s = m.schedule(&g);
        assert!(s.ilp() < 1.5, "ilp = {}", s.ilp());
    }

    #[test]
    fn branch_limit_constrains_packing() {
        // 8 independent branches: width would allow one word, the branch
        // unit forces 8.
        let mut g = DepGraph::new();
        for _ in 0..8 {
            g.op(OpKind::Branch, &[]);
        }
        let m = Vliw {
            width: 16,
            max_branches: 1,
            ..Vliw::default()
        };
        assert_eq!(m.schedule(&g).words.len(), 8);
        let m2 = Vliw {
            width: 16,
            max_branches: 4,
            ..Vliw::default()
        };
        assert_eq!(m2.schedule(&g).words.len(), 2);
    }

    #[test]
    fn misses_stall_the_whole_machine() {
        // Dependent loads: every word contains memory ops, so every miss
        // stalls the lockstep machine with nothing to overlap.
        let g = memory_chain_kernel(8, 8);
        let m = Vliw::default();
        let s = m.schedule(&g);
        let mut rng = SimRng::seed(42);
        let hit = m.execute(&s, 0.0, &mut rng);
        assert_eq!(hit.stall_cycles, Cycle::ZERO);
        let mut rng = SimRng::seed(42);
        let miss = m.execute(&s, 1.0, &mut rng);
        assert!(
            miss.cycles > hit.cycles.saturating_mul(5),
            "hit={} miss={}",
            hit.cycles,
            miss.cycles
        );
        assert!(miss.ops_per_cycle < hit.ops_per_cycle / 5.0);
    }

    #[test]
    fn stats_consistent() {
        let g = regular_kernel(4, 4);
        let m = Vliw::default();
        let s = m.schedule(&g);
        let mut rng = SimRng::seed(1);
        let st = m.execute(&s, 0.3, &mut rng);
        assert_eq!(st.words as usize, s.words.len());
        assert!(st.cycles >= Cycle(st.words));
        assert_eq!(st.cycles.saturating_sub(st.stall_cycles), Cycle(st.words));
    }

    #[test]
    fn empty_graph_schedules_empty() {
        let g = DepGraph::new();
        let s = Vliw::default().schedule(&g);
        assert!(s.words.is_empty());
        assert_eq!(s.ilp(), 0.0);
        assert!(g.is_empty());
    }

    #[test]
    #[should_panic(expected = "deps must precede")]
    fn forward_dep_panics() {
        let mut g = DepGraph::new();
        g.op(OpKind::Alu, &[5]);
    }
}
