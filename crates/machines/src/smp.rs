//! The shared-memory multiprocessor interleaver.

use ttda_sim::{Cycle, EventQueue};
use ttda_vn::{Core, CoreError, MemAccess, MemRef, RunConfig, Step};

/// A per-reference timing model: given *which processor* touched *which
/// word*, how many cycles does the round trip take?
///
/// The functional side of memory is shared [`FlatMemory`]
/// (`ttda-vn`); this trait supplies only the timing, which is where
/// C.mmp and Cm* differ.
///
/// [`FlatMemory`]: ttda_vn::FlatMemory
pub trait LatencyModel {
    /// Round-trip latency for one reference issued at `now`.
    fn latency(&mut self, proc: usize, r: &MemRef, now: Cycle) -> Cycle;
}

impl<F: FnMut(usize, &MemRef, Cycle) -> Cycle> LatencyModel for F {
    fn latency(&mut self, proc: usize, r: &MemRef, now: Cycle) -> Cycle {
        self(proc, r, now)
    }
}

/// What an [`Smp::run`] measured, overall and per processor.
#[derive(Debug, Clone)]
pub struct SmpStats {
    /// Wall-clock completion time (last processor's halt).
    pub cycles: Cycle,
    /// Instructions retired, per processor.
    pub instructions: Vec<u64>,
    /// Busy cycles (instruction execution), per processor.
    pub busy: Vec<Cycle>,
    /// Idle cycles (waiting on memory), per processor.
    pub idle: Vec<Cycle>,
    /// Memory references issued, per processor.
    pub mem_refs: Vec<u64>,
    /// Busy-wait retries observed, per processor.
    pub busy_waits: Vec<u64>,
    /// Whether every processor halted before the horizon.
    pub completed: bool,
}

impl SmpStats {
    /// Mean processor utilization: total busy over `procs × cycles`.
    pub fn utilization(&self) -> f64 {
        let total: u64 = self.busy.iter().map(|b| b.as_u64()).sum();
        let denom = self.cycles.as_u64().saturating_mul(self.busy.len() as u64);
        if denom == 0 {
            0.0
        } else {
            total as f64 / denom as f64
        }
    }

    /// Total instructions across processors.
    pub fn total_instructions(&self) -> u64 {
        self.instructions.iter().sum()
    }

    /// Speedup relative to a run that took `baseline` cycles.
    pub fn speedup_vs(&self, baseline: Cycle) -> f64 {
        if self.cycles == Cycle::ZERO {
            0.0
        } else {
            baseline.as_u64() as f64 / self.cycles.as_u64() as f64
        }
    }
}

/// An event-driven interleaver for `n` blocking von Neumann processors
/// over one shared functional memory.
///
/// Processors execute in global time order (an event queue keyed by each
/// processor's next-ready time), so atomic operations and spin locks
/// behave correctly: the shared [`FlatMemory`](ttda_vn::FlatMemory) is
/// mutated in exactly the order the timing model dictates.
///
/// Every reference *blocks* its processor for the model's round-trip
/// latency — the von Neumann discipline whose consequences §1.1 and the
/// Cm* experience establish. (The TTDA side of the comparison lives in
/// `ttda-core`.)
#[derive(Debug)]
pub struct Smp {
    cores: Vec<Core>,
    mem: ttda_vn::FlatMemory,
    cfg: RunConfig,
}

impl Smp {
    /// Creates a machine from per-processor programs (usually the same
    /// program with a per-processor id in a register) and a shared
    /// memory.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty.
    pub fn new(cores: Vec<Core>, mem: ttda_vn::FlatMemory, cfg: RunConfig) -> Self {
        assert!(!cores.is_empty(), "need at least one processor");
        Smp { cores, mem, cfg }
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.cores.len()
    }

    /// Post-run access to a core (for reading result registers).
    pub fn core(&self, proc: usize) -> &Core {
        &self.cores[proc]
    }

    /// Post-run access to the shared memory.
    pub fn memory_mut(&mut self) -> &mut ttda_vn::FlatMemory {
        &mut self.mem
    }

    /// Runs every processor to `Halt` under `model`.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from any processor.
    pub fn run(&mut self, model: &mut dyn LatencyModel) -> Result<SmpStats, CoreError> {
        let n = self.cores.len();
        let mut stats = SmpStats {
            cycles: Cycle::ZERO,
            instructions: vec![0; n],
            busy: vec![Cycle::ZERO; n],
            idle: vec![Cycle::ZERO; n],
            mem_refs: vec![0; n],
            busy_waits: vec![0; n],
            completed: false,
        };
        let mut q: EventQueue<usize> = EventQueue::new();
        for p in 0..n {
            q.push(Cycle::ZERO, p);
        }
        let mut running = n;
        let mut end = Cycle::ZERO;

        while let Some((now, p)) = q.pop() {
            if now >= self.cfg.max_cycles {
                stats.cycles = now;
                return Ok(stats);
            }
            match self.cores[p].step(&mut self.mem)? {
                Step::Halted => {
                    running -= 1;
                    end = end.max(now);
                    if running == 0 {
                        break;
                    }
                }
                Step::Executed { mem } => {
                    stats.instructions[p] += 1;
                    stats.busy[p] += self.cfg.instr_time;
                    let mut ready = now + self.cfg.instr_time;
                    if let Some(r) = mem {
                        stats.mem_refs[p] += 1;
                        let l = model.latency(p, &r, ready);
                        stats.idle[p] += l;
                        ready += l;
                    }
                    q.push(ready, p);
                }
                Step::BusyWait { addr } => {
                    stats.busy_waits[p] += 1;
                    stats.mem_refs[p] += 1;
                    stats.busy[p] += self.cfg.instr_time;
                    let mut ready = now + self.cfg.instr_time;
                    let r = MemRef {
                        addr,
                        op: MemAccess::FeLoad,
                    };
                    let l = model.latency(p, &r, ready) + self.cfg.retry_interval;
                    stats.idle[p] += l;
                    ready += l;
                    q.push(ready, p);
                }
            }
        }
        stats.cycles = end;
        stats.completed = running == 0;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttda_mem::Addr;
    use ttda_vn::{AluOp, Cond, FlatMemory, ProgramBuilder, Reg};

    /// Each proc stores its id at slot id, then sums all slots once the
    /// barrier counter reaches n.
    fn barrier_program(n: i64) -> ttda_vn::Program {
        let (id, one, cnt, tmp, sum, i) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
        let mut b = ProgramBuilder::new();
        // mem[100 + id] = id; cnt = fetch_add(mem[99], 1)
        b.li(one, 1);
        b.alui(AluOp::Add, tmp, id, 100);
        b.store(id, tmp, 0);
        b.li(cnt, 99);
        b.fetch_add(tmp, cnt, 0, one);
        // spin until mem[99] == n
        b.li(Reg(7), n);
        b.label("spin");
        b.load(tmp, cnt, 0);
        b.branch(Cond::Lt, tmp, Reg(7), "spin");
        // sum
        b.li(sum, 0).li(i, 0);
        b.label("sum");
        b.alui(AluOp::Add, tmp, i, 100);
        b.load(tmp, tmp, 0);
        b.alu(AluOp::Add, sum, sum, tmp);
        b.alui(AluOp::Add, i, i, 1);
        b.branch(Cond::Lt, i, Reg(7), "sum");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn four_procs_synchronize_and_agree() {
        let n = 4;
        let prog = barrier_program(n as i64);
        let cores: Vec<Core> = (0..n)
            .map(|p| {
                let mut c = Core::new(prog.clone());
                c.set_reg(Reg(1), p as i64);
                c
            })
            .collect();
        let mut smp = Smp::new(cores, FlatMemory::new(256), RunConfig::default());
        let stats = smp
            .run(&mut |_: usize, _: &MemRef, _: Cycle| Cycle(3))
            .unwrap();
        assert!(stats.completed);
        for p in 0..n {
            assert_eq!(smp.core(p).reg(Reg(5)), 1 + 2 + 3, "proc {p} sum");
        }
        assert!(stats.utilization() > 0.0 && stats.utilization() <= 1.0);
        assert_eq!(stats.instructions.len(), n);
        assert!(stats.total_instructions() > 0);
    }

    #[test]
    fn higher_latency_lowers_utilization() {
        let prog = barrier_program(1);
        let run_at = |l: u64| {
            let mut c = Core::new(prog.clone());
            c.set_reg(Reg(1), 0);
            let mut smp = Smp::new(vec![c], FlatMemory::new(256), RunConfig::default());
            smp.run(&mut |_: usize, _: &MemRef, _: Cycle| Cycle(l))
                .unwrap()
        };
        let u1 = run_at(1).utilization();
        let u50 = run_at(50).utilization();
        assert!(u50 < u1 / 2.0, "u1={u1} u50={u50}");
    }

    #[test]
    fn horizon_stops_spinners() {
        let mut b = ProgramBuilder::new();
        b.label("spin").jump("spin");
        let cfg = RunConfig {
            max_cycles: Cycle(500),
            ..RunConfig::default()
        };
        let mut smp = Smp::new(vec![Core::new(b.build().unwrap())], FlatMemory::new(4), cfg);
        let stats = smp
            .run(&mut |_: usize, _: &MemRef, _: Cycle| Cycle(0))
            .unwrap();
        assert!(!stats.completed);
    }

    #[test]
    fn speedup_helper() {
        let s = SmpStats {
            cycles: Cycle(50),
            instructions: vec![1],
            busy: vec![Cycle(10)],
            idle: vec![Cycle(40)],
            mem_refs: vec![0],
            busy_waits: vec![0],
            completed: true,
        };
        assert_eq!(s.speedup_vs(Cycle(100)), 2.0);
        let _ = Addr(0); // silence unused import in some cfgs
    }
}
