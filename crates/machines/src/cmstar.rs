//! Cm*: the hierarchical cluster machine that idles on remote references
//! (§1.2.2).

use ttda_net::{ClusterLevel, ClusterTree, Fabric, FabricConfig, NodeId, Topology};
use ttda_sim::Cycle;
use ttda_vn::{Core, CoreError, MemRef, RunConfig};

use crate::smp::{Smp, SmpStats};

/// Configuration for a [`CmStar`] machine.
#[derive(Debug, Clone)]
pub struct CmStarConfig {
    /// Number of clusters.
    pub clusters: usize,
    /// Computer modules per cluster (Cm* grew to 5 clusters × 10 LSI-11s).
    pub per_cluster: usize,
    /// Local memory access time (the "1" of the 1:3:9 ratio).
    pub local_access: Cycle,
    /// Words of address space owned by each computer module.
    pub words_per_module: usize,
    /// Kmap / intercluster link queueing.
    pub fabric: FabricConfig,
    /// Processor timing.
    pub run: RunConfig,
}

impl Default for CmStarConfig {
    fn default() -> Self {
        CmStarConfig {
            clusters: 4,
            per_cluster: 8,
            local_access: Cycle(3),
            words_per_module: 1 << 12,
            fabric: FabricConfig {
                link_service: Cycle(2),
                switch_delay: Cycle(1),
                injection_delay: Cycle(0),
            },
            run: RunConfig::default(),
        }
    }
}

struct CmStarModel {
    fabric: Fabric<ClusterTree>,
    local_access: Cycle,
    words_per_module: usize,
    refs: [u64; 3], // local / intra / inter counters
}

impl crate::smp::LatencyModel for CmStarModel {
    fn latency(&mut self, proc: usize, r: &MemRef, now: Cycle) -> Cycle {
        let home = NodeId((r.addr.0 / self.words_per_module) % self.fabric.topology().ports());
        let level = self.fabric.topology().level(NodeId(proc), home);
        match level {
            ClusterLevel::Local => {
                self.refs[0] += 1;
                self.local_access
            }
            lvl => {
                self.refs[if lvl == ClusterLevel::IntraCluster {
                    1
                } else {
                    2
                }] += 1;
                // Request travels through the Kmap hierarchy, memory is
                // accessed, the response mirrors the path. The processor
                // idles the whole time — "any processor making a nonlocal
                // memory reference would idle until the reference was
                // completed".
                let arrive = self.fabric.send(now, NodeId(proc), home);
                let served = arrive + self.local_access;
                let one_way = arrive - now;
                (served - now) + one_way
            }
        }
    }
}

/// The Cm* machine: blocking LSI-11-style processors, per-module local
/// memory, Kmap-mediated nonlocal references at the published latency
/// ratios.
///
/// Address `a` is *local* to processor `a / words_per_module`; workloads
/// lay out their data to give each processor a local partition, exactly
/// as Cm* programmers had to.
///
/// # Example
///
/// ```
/// use ttda_machines::{CmStar, CmStarConfig};
/// use ttda_vn::{Core, ProgramBuilder, Reg};
///
/// let mut b = ProgramBuilder::new();
/// b.load(Reg(1), Reg(0), 0).halt(); // one local reference
/// let prog = b.build()?;
/// let cfg = CmStarConfig { clusters: 2, per_cluster: 2, ..CmStarConfig::default() };
/// let mut m = CmStar::new(vec![Core::new(prog); 4], cfg);
/// let stats = m.run()?;
/// assert!(stats.completed);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CmStar {
    smp: Smp,
    config: CmStarConfig,
    ref_mix: [u64; 3],
}

impl CmStar {
    /// Builds the machine. Each core's register `r31` is preloaded with
    /// the base address of its local partition, so programs can address
    /// local data relative to it.
    ///
    /// # Panics
    ///
    /// Panics if `cores.len() != clusters * per_cluster`.
    pub fn new(mut cores: Vec<Core>, config: CmStarConfig) -> Self {
        let n = config.clusters * config.per_cluster;
        assert_eq!(cores.len(), n, "one core per computer module");
        for (p, c) in cores.iter_mut().enumerate() {
            c.set_reg(ttda_vn::Reg(31), (p * config.words_per_module) as i64);
        }
        let mem = ttda_vn::FlatMemory::new(n * config.words_per_module);
        CmStar {
            smp: Smp::new(cores, mem, config.run),
            config,
            ref_mix: [0; 3],
        }
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.config.clusters * self.config.per_cluster
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError`] from any processor.
    pub fn run(&mut self) -> Result<SmpStats, CoreError> {
        let tree = ClusterTree::new(self.config.clusters, self.config.per_cluster)
            .expect("validated sizes");
        let mut model = CmStarModel {
            fabric: Fabric::new(tree, self.config.fabric),
            local_access: self.config.local_access,
            words_per_module: self.config.words_per_module,
            refs: [0; 3],
        };
        let stats = self.smp.run(&mut model)?;
        self.ref_mix = model.refs;
        Ok(stats)
    }

    /// `(local, intra-cluster, inter-cluster)` reference counts from the
    /// last run.
    pub fn reference_mix(&self) -> (u64, u64, u64) {
        (self.ref_mix[0], self.ref_mix[1], self.ref_mix[2])
    }

    /// Post-run core access.
    pub fn core(&self, proc: usize) -> &Core {
        self.smp.core(proc)
    }

    /// Post-run memory access.
    pub fn memory_mut(&mut self) -> &mut ttda_vn::FlatMemory {
        self.smp.memory_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttda_vn::{AluOp, Cond, ProgramBuilder, Reg};

    /// Reads `k` words starting at absolute address in r30.
    fn reader(k: i64) -> ttda_vn::Program {
        let (i, n, t) = (Reg(2), Reg(3), Reg(4));
        let mut b = ProgramBuilder::new();
        b.li(i, 0).li(n, k);
        b.label("l");
        b.alu(AluOp::Add, t, Reg(30), i);
        b.load(t, t, 0);
        b.alui(AluOp::Add, i, i, 1);
        b.branch(Cond::Lt, i, n, "l");
        b.halt();
        b.build().unwrap()
    }

    fn machine_with_target(target_of: impl Fn(usize) -> i64, k: i64) -> CmStar {
        let cfg = CmStarConfig {
            clusters: 2,
            per_cluster: 2,
            words_per_module: 64,
            ..CmStarConfig::default()
        };
        let cores: Vec<Core> = (0..4)
            .map(|p| {
                let mut c = Core::new(reader(k));
                c.set_reg(Reg(30), target_of(p));
                c
            })
            .collect();
        CmStar::new(cores, cfg)
    }

    #[test]
    fn local_references_fastest() {
        // All local.
        let mut local = machine_with_target(|p| (p * 64) as i64, 20);
        let t_local = local.run().unwrap().cycles;
        assert_eq!(local.reference_mix().0, 80);

        // All intra-cluster (neighbor module).
        let mut intra = machine_with_target(|p| ((p ^ 1) * 64) as i64, 20);
        let t_intra = intra.run().unwrap().cycles;
        assert_eq!(intra.reference_mix().1, 80);

        // All inter-cluster (other cluster).
        let mut inter = machine_with_target(|p| (((p + 2) % 4) * 64) as i64, 20);
        let t_inter = inter.run().unwrap().cycles;
        assert_eq!(inter.reference_mix().2, 80);

        assert!(t_local < t_intra, "{t_local} !< {t_intra}");
        assert!(t_intra < t_inter, "{t_intra} !< {t_inter}");
        // The published shape: inter is several times local.
        assert!(t_inter.as_u64() > 3 * t_local.as_u64());
    }

    #[test]
    fn remote_utilization_collapses() {
        let mut local = machine_with_target(|p| (p * 64) as i64, 30);
        let u_local = local.run().unwrap().utilization();
        let mut inter = machine_with_target(|p| (((p + 2) % 4) * 64) as i64, 30);
        let u_inter = inter.run().unwrap().utilization();
        assert!(
            u_inter < u_local / 2.0,
            "u_local={u_local} u_inter={u_inter}"
        );
    }

    #[test]
    fn base_register_preloaded() {
        let m = machine_with_target(|_| 0, 1);
        assert_eq!(m.core(1).reg(Reg(31)), 64);
        assert_eq!(m.procs(), 4);
    }

    #[test]
    #[should_panic(expected = "one core per computer module")]
    fn wrong_core_count_panics() {
        let cfg = CmStarConfig {
            clusters: 2,
            per_cluster: 2,
            ..CmStarConfig::default()
        };
        let _ = CmStar::new(vec![Core::new(reader(1)); 3], cfg);
    }
}
