//! The surveyed von Neumann multiprocessors (§1.2).
//!
//! Each machine the paper examines is reproduced as a timing model built
//! from the `ttda-vn` processor, the `ttda-net` networks and the
//! `ttda-mem` memories, parameterized to the organization the paper
//! describes:
//!
//! - [`Cmmp`] — §1.2.1: PDP-11s on a crossbar into shared memory, with
//!   *optional* per-processor caches (the option C.mmp shipped without:
//!   "the reason is, quite simply, the cache coherence problem");
//! - [`CmStar`] — §1.2.2: a cluster hierarchy whose processors *idle*
//!   for the full duration of any nonlocal reference, putting "an upper
//!   limit on the number of processors that could cooperate";
//! - [`Ultra`] — §1.2.3: the NYU Ultracomputer's omega network with
//!   combining FETCH-AND-ADD switches (and a non-combining mode to show
//!   what the combining buys);
//! - [`Vliw`] — §1.2.4: an ELI-512-style wide-word machine whose
//!   compile-time schedule cannot tolerate dynamic memory latency;
//! - [`ConnectionMachine`] — §1.2.5: 2^k 1-bit SIMD processors on a
//!   grid + hypercube router, where "a processor will spend almost all
//!   (90%?, 99%?) of its time communicating".
//!
//! The common substrate is [`Smp`], an event-driven interleaver for
//! shared-memory machines with pluggable per-reference latency models.

#![warn(missing_docs)]

mod cm;
mod cmmp;
mod cmstar;
mod smp;
mod ultra;
mod vliw;

pub use cm::{CmInstr, CmStats, ConnectionMachine};
pub use cmmp::{Cmmp, CmmpConfig};
pub use cmstar::{CmStar, CmStarConfig};
pub use smp::{LatencyModel, Smp, SmpStats};
pub use ultra::{Ultra, UltraConfig, UltraStats};
pub use vliw::{
    branchy_kernel, memory_chain_kernel, regular_kernel, DepGraph, OpKind, Schedule, Vliw,
    VliwStats,
};
