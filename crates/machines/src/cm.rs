//! The Connection Machine: second-generation SIMD (§1.2.5).
//!
//! One instruction stream drives `2^dim` one-bit processors. Compute
//! instructions cost bit-serial ALU time; `Route` instructions run the
//! packet router until every message arrives — "a global flag is raised
//! when all processors are done communicating, and only then can the
//! next instruction begin". Router conflicts make messages take
//! "significantly more steps than the required minimum number", and the
//! measurement the paper asks for is the fraction of all time spent
//! communicating (its guess: "90%?, 99%?").

use std::collections::HashSet;

use ttda_sim::Cycle;

/// One instruction of the (SIMD) front-end program.
#[derive(Debug, Clone)]
pub enum CmInstr {
    /// Every active processor performs `bit_ops` one-bit ALU steps.
    Compute {
        /// Serial bit operations (a 32-bit add is 32).
        bit_ops: u64,
    },
    /// The router delivers every `(source, destination)` message; the
    /// machine proceeds only when the last one lands.
    Route {
        /// The messages, by processor index.
        messages: Vec<(usize, usize)>,
    },
}

/// Measurements from one program run.
#[derive(Debug, Clone, Default)]
pub struct CmStats {
    /// Cycles spent in ALU (compute) instructions.
    pub compute_cycles: Cycle,
    /// Cycles spent routing.
    pub comm_cycles: Cycle,
    /// Messages delivered.
    pub messages: u64,
    /// Router rounds actually needed, summed over Route instructions.
    pub route_rounds: u64,
    /// Lower bound: the max Hamming distance per Route, summed (what a
    /// conflict-free router would need).
    pub ideal_rounds: u64,
}

impl CmStats {
    /// Total time.
    pub fn total(&self) -> Cycle {
        self.compute_cycles + self.comm_cycles
    }

    /// Fraction of time spent communicating — the paper's "90%? 99%?".
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total().as_u64();
        if t == 0 {
            0.0
        } else {
            self.comm_cycles.as_u64() as f64 / t as f64
        }
    }

    /// Congestion: actual router rounds over the conflict-free minimum.
    pub fn congestion(&self) -> f64 {
        if self.ideal_rounds == 0 {
            1.0
        } else {
            self.route_rounds as f64 / self.ideal_rounds as f64
        }
    }
}

/// The machine: a `2^dim`-processor hypercube of one-bit ALUs.
///
/// # Example
///
/// ```
/// use ttda_machines::{CmInstr, ConnectionMachine};
///
/// let mut cm = ConnectionMachine::new(6).unwrap(); // 64 PEs
/// let stats = cm.run(&[
///     CmInstr::Compute { bit_ops: 32 },
///     CmInstr::Route { messages: (0..64).map(|p| (p, 63 - p)).collect() },
/// ]);
/// assert!(stats.comm_fraction() > 0.5);
/// ```
#[derive(Debug)]
pub struct ConnectionMachine {
    dim: usize,
    n: usize,
    /// Time per one-bit ALU step.
    pub alu_bit_time: Cycle,
    /// Time per bit per hop on the bit-serial hypercube links.
    pub route_bit_time: Cycle,
    /// Message length in bits (the CM proposal's packets carried a
    /// 32-bit datum plus addressing).
    pub message_bits: u64,
}

impl ConnectionMachine {
    /// Creates a `2^dim` machine.
    ///
    /// # Errors
    ///
    /// Returns an error string if `dim` is 0 or over 20 (the simulation
    /// bound; the proposal's 2¹⁴ groups fit comfortably).
    pub fn new(dim: usize) -> Result<Self, String> {
        if dim == 0 || dim > 20 {
            return Err(format!("dimension must be in 1..=20, got {dim}"));
        }
        Ok(ConnectionMachine {
            dim,
            n: 1 << dim,
            alu_bit_time: Cycle(1),
            route_bit_time: Cycle(1),
            message_bits: 48,
        })
    }

    /// Processor count.
    pub fn processors(&self) -> usize {
        self.n
    }

    /// Hypercube dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Runs a front-end program.
    ///
    /// # Panics
    ///
    /// Panics if a message endpoint is out of range.
    pub fn run(&mut self, program: &[CmInstr]) -> CmStats {
        let mut stats = CmStats::default();
        for instr in program {
            match instr {
                CmInstr::Compute { bit_ops } => {
                    stats.compute_cycles += self.alu_bit_time.saturating_mul(*bit_ops);
                }
                CmInstr::Route { messages } => {
                    let (rounds, ideal) = self.route(messages);
                    stats.messages += messages.len() as u64;
                    stats.route_rounds += rounds;
                    stats.ideal_rounds += ideal;
                    stats.comm_cycles += self
                        .route_bit_time
                        .saturating_mul(self.message_bits)
                        .saturating_mul(rounds);
                }
            }
        }
        stats
    }

    /// Dimension-order store-and-forward routing, one message per
    /// directed link per round. Returns (rounds, conflict-free minimum).
    fn route(&self, messages: &[(usize, usize)]) -> (u64, u64) {
        #[derive(Debug)]
        struct Msg {
            cur: usize,
            dst: usize,
        }
        let mut msgs: Vec<Msg> = messages
            .iter()
            .map(|&(s, d)| {
                assert!(s < self.n && d < self.n, "message endpoint out of range");
                Msg { cur: s, dst: d }
            })
            .collect();
        let ideal = msgs
            .iter()
            .map(|m| (m.cur ^ m.dst).count_ones() as u64)
            .max()
            .unwrap_or(0);

        let mut rounds = 0u64;
        loop {
            let mut pending = false;
            let mut used: HashSet<(usize, usize)> = HashSet::new();
            let mut moved = false;
            for m in &mut msgs {
                if m.cur == m.dst {
                    continue;
                }
                pending = true;
                let dim = (m.cur ^ m.dst).trailing_zeros() as usize;
                if used.insert((m.cur, dim)) {
                    m.cur ^= 1 << dim;
                    moved = true;
                }
            }
            if !pending {
                break;
            }
            rounds += 1;
            debug_assert!(moved, "router made no progress");
        }
        (rounds, ideal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_free_permutation_routes_at_distance() {
        // Each PE sends to its complement: distance dim, and since all
        // messages cross dimensions in the same order, there are heavy
        // conflicts only when paths share links; complement permutation
        // is link-disjoint per round.
        let mut cm = ConnectionMachine::new(4).unwrap();
        let msgs: Vec<(usize, usize)> = (0..16).map(|p| (p, p ^ 0xF)).collect();
        let s = cm.run(&[CmInstr::Route { messages: msgs }]);
        assert_eq!(s.ideal_rounds, 4);
        assert_eq!(s.route_rounds, 4, "complement permutation is conflict-free");
        assert_eq!(s.congestion(), 1.0);
    }

    #[test]
    fn hot_spot_congests_router() {
        // Everyone sends to PE 0: last hop serializes.
        let mut cm = ConnectionMachine::new(5).unwrap();
        let msgs: Vec<(usize, usize)> = (1..32).map(|p| (p, 0)).collect();
        let s = cm.run(&[CmInstr::Route { messages: msgs }]);
        assert!(s.route_rounds >= 31 / 5, "rounds = {}", s.route_rounds);
        assert!(s.congestion() > 1.0, "congestion = {}", s.congestion());
    }

    #[test]
    fn communication_dominates_on_pointer_chasing() {
        // A graph-exploration step: 32 bits of compute, one full routing
        // phase. The paper's claim: ALU time is insignificant.
        let mut cm = ConnectionMachine::new(8).unwrap();
        let n = cm.processors();
        let mut program = Vec::new();
        for round in 0..10 {
            program.push(CmInstr::Compute { bit_ops: 32 });
            let shift = 1 + round * 37;
            program.push(CmInstr::Route {
                messages: (0..n).map(|p| (p, (p * 31 + shift) % n)).collect(),
            });
        }
        let s = cm.run(&program);
        assert!(
            s.comm_fraction() > 0.85,
            "comm fraction = {}",
            s.comm_fraction()
        );
    }

    #[test]
    fn compute_only_is_all_alu() {
        let mut cm = ConnectionMachine::new(3).unwrap();
        let s = cm.run(&[CmInstr::Compute { bit_ops: 100 }]);
        assert_eq!(s.comm_fraction(), 0.0);
        assert_eq!(s.total(), Cycle(100));
        assert_eq!(s.congestion(), 1.0);
    }

    #[test]
    fn empty_route_is_free() {
        let mut cm = ConnectionMachine::new(3).unwrap();
        let s = cm.run(&[CmInstr::Route { messages: vec![] }]);
        assert_eq!(s.comm_cycles, Cycle::ZERO);
        assert_eq!(s.messages, 0);
    }

    #[test]
    fn self_messages_deliver_instantly() {
        let mut cm = ConnectionMachine::new(3).unwrap();
        let s = cm.run(&[CmInstr::Route {
            messages: (0..8).map(|p| (p, p)).collect(),
        }]);
        assert_eq!(s.route_rounds, 0);
    }

    #[test]
    fn bad_dim_rejected() {
        assert!(ConnectionMachine::new(0).is_err());
        assert!(ConnectionMachine::new(21).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let mut cm = ConnectionMachine::new(3).unwrap();
        let _ = cm.run(&[CmInstr::Route {
            messages: vec![(0, 99)],
        }]);
    }
}
