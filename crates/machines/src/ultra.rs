//! The NYU Ultracomputer: FETCH-AND-ADD with combining switches
//! (§1.2.3).

use std::collections::HashMap;

use ttda_net::Omega;
use ttda_sim::Cycle;

/// Configuration for an [`Ultra`] machine.
#[derive(Debug, Clone, Copy)]
pub struct UltraConfig {
    /// Processor (and memory-port) count; must be a power of two ≥ 2.
    pub procs: usize,
    /// Transit time of one 2×2 switch stage.
    pub switch_time: Cycle,
    /// Extra time for the adder when two packets combine in a switch
    /// (the hardware complexity the paper worries about).
    pub combine_time: Cycle,
    /// Memory module service time per request.
    pub mem_time: Cycle,
    /// Whether the switches combine same-address FETCH-AND-ADDs.
    pub combining: bool,
}

impl Default for UltraConfig {
    fn default() -> Self {
        UltraConfig {
            procs: 16,
            switch_time: Cycle(2),
            combine_time: Cycle(1),
            mem_time: Cycle(6),
            combining: true,
        }
    }
}

/// Results of one synchronous FETCH-AND-ADD round.
#[derive(Debug, Clone)]
pub struct UltraStats {
    /// Time at which the last processor received its response.
    pub completion: Cycle,
    /// Mean response latency across processors.
    pub mean_latency: f64,
    /// Additions performed inside switches (combining + decombining).
    /// The paper: "one memory reference may involve as many as log₂n
    /// additions, and implies substantial hardware complexity."
    pub switch_adds: u64,
    /// Requests that actually reached a memory module.
    pub memory_ops: u64,
    /// The value fetched by each processor, in processor order.
    pub returned: Vec<i64>,
    /// Final contents of each touched address.
    pub finals: HashMap<u64, i64>,
}

#[derive(Debug, Clone)]
enum Tree {
    Leaf(usize),
    Combined(Box<Tree>, Box<Tree>),
}

impl Tree {
    fn total(&self, incs: &[i64]) -> i64 {
        match self {
            Tree::Leaf(p) => incs[*p],
            Tree::Combined(a, b) => a.total(incs).wrapping_add(b.total(incs)),
        }
    }

    /// Decombination: "when the memory returns the old value of location
    /// A, the switch returns two values ((A) and (A) + x)".
    fn assign(&self, base: i64, incs: &[i64], returned: &mut [i64], adds: &mut u64) {
        match self {
            Tree::Leaf(p) => returned[*p] = base,
            Tree::Combined(a, b) => {
                a.assign(base, incs, returned, adds);
                *adds += 1;
                b.assign(base.wrapping_add(a.total(incs)), incs, returned, adds);
            }
        }
    }
}

#[derive(Debug)]
struct Pkt {
    pos: usize,
    addr: u64,
    time: Cycle,
    tree: Tree,
}

/// The Ultracomputer model: `n` processors issue one FETCH-AND-ADD each,
/// simultaneously, into an omega network of (optionally combining) 2×2
/// switches backed by `n` memory modules.
///
/// The hot-spot experiment (E7) is the paper's scenario: *every*
/// processor updates the same shared variable. Without combining the
/// requests funnel into one memory module and serialize; with combining
/// each switch merges the two same-address requests that meet in it, so
/// exactly one request per round reaches memory regardless of `n`.
///
/// # Example
///
/// ```
/// use ttda_machines::{Ultra, UltraConfig};
///
/// let mut u = Ultra::new(UltraConfig { procs: 8, ..UltraConfig::default() }).unwrap();
/// let stats = u.hot_spot(&[1; 8]);
/// // All 8 unit increments landed:
/// assert_eq!(stats.finals[&0], 8);
/// // And the fetched values are a permutation of 0..8 (serializability):
/// let mut r = stats.returned.clone();
/// r.sort();
/// assert_eq!(r, (0..8).collect::<Vec<_>>());
/// ```
#[derive(Debug)]
pub struct Ultra {
    config: UltraConfig,
    omega: Omega,
}

impl Ultra {
    /// Builds the machine.
    ///
    /// # Errors
    ///
    /// Returns a [`ttda_net::TopologyError`] if `procs` is not a power
    /// of two ≥ 2.
    pub fn new(config: UltraConfig) -> Result<Self, ttda_net::TopologyError> {
        Ok(Ultra {
            config,
            omega: Omega::new(config.procs)?,
        })
    }

    /// Stage count of the network.
    pub fn stages(&self) -> usize {
        self.omega.stages()
    }

    /// All processors FETCH-AND-ADD address 0; processor `p` adds
    /// `increments[p]`.
    ///
    /// # Panics
    ///
    /// Panics if `increments.len() != procs`.
    pub fn hot_spot(&mut self, increments: &[i64]) -> UltraStats {
        let reqs: Vec<(u64, i64)> = increments.iter().map(|&v| (0u64, v)).collect();
        self.run(&reqs)
    }

    /// Each processor `p` FETCH-AND-ADDs `requests[p] = (address,
    /// increment)`. Addresses map to memory module `address % procs`.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != procs`.
    pub fn run(&mut self, requests: &[(u64, i64)]) -> UltraStats {
        let n = self.config.procs;
        assert_eq!(requests.len(), n, "one request per processor");
        let k = self.omega.stages();
        let sw = self.config.switch_time;
        let incs: Vec<i64> = requests.iter().map(|&(_, v)| v).collect();

        let mut pkts: Vec<Pkt> = requests
            .iter()
            .enumerate()
            .map(|(p, &(addr, _))| Pkt {
                pos: p,
                addr,
                time: Cycle::ZERO,
                tree: Tree::Leaf(p),
            })
            .collect();
        let mut switch_adds: u64 = 0;

        // Forward pass, stage by stage.
        for s in 0..k {
            // Advance every packet to its output wire at this stage.
            for pkt in &mut pkts {
                let dest = (pkt.addr as usize) % n;
                // Perfect shuffle then destination-tag bit.
                let shuffled = ((pkt.pos << 1) | (pkt.pos >> (k - 1))) & (n - 1);
                let bit = (dest >> (k - 1 - s)) & 1;
                pkt.pos = (shuffled & !1) | bit;
                pkt.time += sw;
            }
            // Resolve conflicts per output wire.
            let mut by_wire: HashMap<usize, Vec<usize>> = HashMap::new();
            for (i, pkt) in pkts.iter().enumerate() {
                by_wire.entry(pkt.pos).or_default().push(i);
            }
            let mut merged: Vec<Pkt> = Vec::with_capacity(pkts.len());
            let mut taken = vec![false; pkts.len()];
            for (_, mut group) in by_wire {
                group.sort_by_key(|&i| (pkts[i].time, i));
                let mut gi = 0;
                while gi < group.len() {
                    let i = group[gi];
                    if taken[i] {
                        gi += 1;
                        continue;
                    }
                    // Try to combine with the next same-address packet.
                    if self.config.combining {
                        if let Some(&j) = group[gi + 1..]
                            .iter()
                            .find(|&&j| !taken[j] && pkts[j].addr == pkts[i].addr)
                        {
                            switch_adds += 1;
                            let t = pkts[i].time.max(pkts[j].time) + self.config.combine_time;
                            let tree = Tree::Combined(
                                Box::new(pkts[i].tree.clone()),
                                Box::new(pkts[j].tree.clone()),
                            );
                            merged.push(Pkt {
                                pos: pkts[i].pos,
                                addr: pkts[i].addr,
                                time: t,
                                tree,
                            });
                            taken[i] = true;
                            taken[j] = true;
                            gi += 1;
                            continue;
                        }
                    }
                    // No combine: later packets on this wire serialize.
                    let delay = sw.saturating_mul(gi as u64);
                    merged.push(Pkt {
                        pos: pkts[i].pos,
                        addr: pkts[i].addr,
                        time: pkts[i].time + delay,
                        tree: pkts[i].tree.clone(),
                    });
                    taken[i] = true;
                    gi += 1;
                }
            }
            pkts = merged;
        }

        // Memory: per-module FIFO in arrival order.
        let mut module_free: Vec<Cycle> = vec![Cycle::ZERO; n];
        let mut contents: HashMap<u64, i64> = HashMap::new();
        let mut returned = vec![0i64; n];
        let mut latencies: Vec<Cycle> = Vec::with_capacity(n);
        let memory_ops = pkts.len() as u64;

        pkts.sort_by_key(|p| (p.time, p.pos));
        for pkt in pkts {
            let m = (pkt.addr as usize) % n;
            let start = pkt.time.max(module_free[m]);
            let done = start + self.config.mem_time;
            module_free[m] = done;
            let cell = contents.entry(pkt.addr).or_insert(0);
            let old = *cell;
            *cell = cell.wrapping_add(pkt.tree.total(&incs));
            pkt.tree.assign(old, &incs, &mut returned, &mut switch_adds);
            // Return trip: k stages back (return-path conflicts are
            // second-order once combining has thinned the traffic; the
            // forward pass carries the contention model).
            latencies.push(done + sw.saturating_mul(k as u64));
        }

        let completion = latencies.iter().copied().max().unwrap_or(Cycle::ZERO);
        let mean_latency = latencies.iter().map(|c| c.as_u64()).sum::<u64>() as f64
            / latencies.len().max(1) as f64;
        UltraStats {
            completion,
            mean_latency,
            switch_adds,
            memory_ops,
            returned,
            finals: contents,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(procs: usize, combining: bool) -> UltraConfig {
        UltraConfig {
            procs,
            combining,
            ..UltraConfig::default()
        }
    }

    #[test]
    fn hot_spot_serializable_both_modes() {
        for combining in [false, true] {
            let mut u = Ultra::new(cfg(16, combining)).unwrap();
            let s = u.hot_spot(&[1; 16]);
            assert_eq!(s.finals[&0], 16, "combining={combining}");
            let mut r = s.returned.clone();
            r.sort();
            assert_eq!(r, (0..16).collect::<Vec<_>>(), "combining={combining}");
        }
    }

    #[test]
    fn combining_beats_serialization_on_hot_spot() {
        let t = |n: usize, c: bool| {
            Ultra::new(cfg(n, c))
                .unwrap()
                .hot_spot(&vec![1; n])
                .completion
        };
        for n in [8, 32, 128] {
            let with = t(n, true);
            let without = t(n, false);
            assert!(
                with.as_u64() * 2 < without.as_u64(),
                "n={n}: combining {with} vs serial {without}"
            );
        }
        // And serialization grows ~linearly while combining grows ~log.
        let w8 = t(8, false).as_u64() as f64;
        let w128 = t(128, false).as_u64() as f64;
        assert!(w128 / w8 > 8.0, "serial scaling {}", w128 / w8);
        let c8 = t(8, true).as_u64() as f64;
        let c128 = t(128, true).as_u64() as f64;
        assert!(c128 / c8 < 3.0, "combining scaling {}", c128 / c8);
    }

    #[test]
    fn combining_reaches_memory_once() {
        let mut u = Ultra::new(cfg(32, true)).unwrap();
        let s = u.hot_spot(&[1; 32]);
        assert_eq!(s.memory_ops, 1, "fully combined tree");
        // N-1 combines + N-1 decombines.
        assert_eq!(s.switch_adds, 2 * 31);
        let mut no = Ultra::new(cfg(32, false)).unwrap();
        let s = no.hot_spot(&[1; 32]);
        assert_eq!(s.memory_ops, 32);
        assert_eq!(s.switch_adds, 0);
    }

    #[test]
    fn nonuniform_increments_sum_correctly() {
        let incs: Vec<i64> = (0..8).map(|i| 10 + i).collect();
        let mut u = Ultra::new(cfg(8, true)).unwrap();
        let s = u.hot_spot(&incs);
        assert_eq!(s.finals[&0], incs.iter().sum::<i64>());
        // Returned values must be consistent with *some* serial order:
        // sorted returned = prefix sums of some permutation. Weak check:
        // min is 0 and all distinct.
        let mut r = s.returned.clone();
        r.sort();
        assert_eq!(r[0], 0);
        r.dedup();
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn uniform_traffic_needs_no_combining() {
        // Distinct addresses: combining can't merge anything; times of
        // both modes are identical.
        let reqs: Vec<(u64, i64)> = (0..16).map(|p| (p as u64, 1)).collect();
        let a = Ultra::new(cfg(16, true)).unwrap().run(&reqs);
        let b = Ultra::new(cfg(16, false)).unwrap().run(&reqs);
        assert_eq!(a.memory_ops, 16);
        assert_eq!(a.completion, b.completion);
        for p in 0..16 {
            assert_eq!(a.returned[p], 0, "each address fetched its own 0");
        }
    }

    #[test]
    #[should_panic(expected = "one request per processor")]
    fn wrong_request_count_panics() {
        let mut u = Ultra::new(cfg(8, true)).unwrap();
        let _ = u.hot_spot(&[1; 4]);
    }

    #[test]
    fn bad_size_rejected() {
        assert!(Ultra::new(cfg(6, true)).is_err());
    }
}
