//! Property tests for the surveyed machine models, driven by the
//! in-tree `check` harness.

use ttda_machines::{CmInstr, ConnectionMachine, DepGraph, OpKind, Ultra, UltraConfig, Vliw};
use ttda_sim::{check, SimRng};

#[test]
fn faa_preserves_the_total_for_any_increments() {
    check::forall("faa preserves the total", |rng| {
        let n = 8;
        let incs: Vec<i64> = (0..n).map(|_| rng.gen_range(-50i64..50)).collect();
        let combining = rng.chance(0.5);
        let mut u = Ultra::new(UltraConfig {
            procs: n,
            combining,
            ..UltraConfig::default()
        })
        .expect("power of two");
        let stats = u.hot_spot(&incs);
        assert_eq!(stats.finals[&0], incs.iter().sum::<i64>());
    });
}

#[test]
fn faa_is_serializable_for_positive_increments() {
    check::forall("faa serializable for positive increments", |rng| {
        // With strictly positive increments the serial order is
        // recoverable: prefix sums are strictly increasing, so sorting
        // the fetched values reconstructs the commit order exactly.
        let n = 8;
        let incs: Vec<i64> = (0..n).map(|_| rng.gen_range(1i64..50)).collect();
        let combining = rng.chance(0.5);
        let mut u = Ultra::new(UltraConfig {
            procs: n,
            combining,
            ..UltraConfig::default()
        })
        .expect("power of two");
        let stats = u.hot_spot(&incs);
        assert_eq!(stats.finals[&0], incs.iter().sum::<i64>());
        let mut pairs: Vec<(i64, usize)> = stats.returned.iter().copied().zip(0..n).collect();
        pairs.sort();
        let mut acc = 0i64;
        for (got, proc) in pairs {
            assert_eq!(got, acc, "prefix-sum order broken at proc {proc}");
            acc += incs[proc];
        }
    });
}

#[test]
fn cm_router_always_delivers() {
    check::forall("cm router always delivers", |rng| {
        let dim = rng.gen_range(2usize..7);
        let mut cm = ConnectionMachine::new(dim).expect("dim ok");
        let n = cm.processors();
        let count = rng.gen_range(0usize..80);
        let messages: Vec<(usize, usize)> = (0..count)
            .map(|_| (rng.gen_range(0usize..n), rng.gen_range(0usize..n)))
            .collect();
        let nontrivial = messages.iter().filter(|(a, b)| a != b).count() as u64;
        let s = cm.run(&[CmInstr::Route { messages }]);
        // Rounds are bounded by distance + serialization.
        assert!(s.route_rounds <= dim as u64 + nontrivial);
        assert!(s.route_rounds >= s.ideal_rounds.min(dim as u64));
    });
}

#[test]
fn vliw_schedule_is_a_permutation_respecting_deps() {
    check::forall("vliw schedule is a permutation", |rng| {
        let width = rng.gen_range(1usize..20);
        // Build a DAG over 40 ops with edges (a -> b means b depends on a).
        let mut g = DepGraph::new();
        let mut deps: Vec<Vec<usize>> = vec![vec![]; 40];
        let edges = rng.gen_range(0usize..60);
        for _ in 0..edges {
            let b = rng.gen_range(1usize..40);
            let a = rng.gen_range(0usize..40);
            if a < b {
                deps[b].push(a);
            }
        }
        for d in deps.iter() {
            let kinds = [OpKind::Alu, OpKind::Mem, OpKind::Branch];
            let kind = kinds[d.len() % 3];
            g.op(kind, d);
        }
        let m = Vliw {
            width,
            ..Vliw::default()
        };
        let s = m.schedule(&g);
        // Every op appears exactly once.
        let mut seen = vec![false; g.len()];
        for w in &s.words {
            assert!(w.len() <= width);
            for &op in w {
                assert!(!seen[op], "op {op} scheduled twice");
                seen[op] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
        // Execution accounting: cycles == words + stalls.
        let mut exec_rng = SimRng::seed(9);
        let st = m.execute(&s, 0.25, &mut exec_rng);
        assert_eq!(st.cycles.as_u64(), st.words + st.stall_cycles.as_u64());
    });
}
