//! Property tests for the surveyed machine models.

use proptest::prelude::*;
use ttda_machines::{CmInstr, ConnectionMachine, DepGraph, OpKind, Ultra, UltraConfig, Vliw};
use ttda_sim::SimRng;

proptest! {
    #[test]
    fn faa_preserves_the_total_for_any_increments(
        incs in proptest::collection::vec(-50i64..50, 8..9),
        combining in any::<bool>(),
    ) {
        let n = incs.len();
        let mut u = Ultra::new(UltraConfig { procs: n, combining, ..UltraConfig::default() })
            .expect("power of two");
        let stats = u.hot_spot(&incs);
        prop_assert_eq!(stats.finals[&0], incs.iter().sum::<i64>());
    }

    #[test]
    fn faa_is_serializable_for_positive_increments(
        incs in proptest::collection::vec(1i64..50, 8..9),
        combining in any::<bool>(),
    ) {
        // With strictly positive increments the serial order is
        // recoverable: prefix sums are strictly increasing, so sorting
        // the fetched values reconstructs the commit order exactly.
        let n = incs.len();
        let mut u = Ultra::new(UltraConfig { procs: n, combining, ..UltraConfig::default() })
            .expect("power of two");
        let stats = u.hot_spot(&incs);
        prop_assert_eq!(stats.finals[&0], incs.iter().sum::<i64>());
        let mut pairs: Vec<(i64, usize)> = stats.returned.iter().copied().zip(0..n).collect();
        pairs.sort();
        let mut acc = 0i64;
        for (got, proc) in pairs {
            prop_assert_eq!(got, acc, "prefix-sum order broken at proc {}", proc);
            acc += incs[proc];
        }
    }

    #[test]
    fn cm_router_always_delivers(
        dim in 2usize..7,
        msgs in proptest::collection::vec((0usize..64, 0usize..64), 0..80),
    ) {
        let mut cm = ConnectionMachine::new(dim).expect("dim ok");
        let n = cm.processors();
        let messages: Vec<(usize, usize)> = msgs.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let nontrivial = messages.iter().filter(|(a, b)| a != b).count() as u64;
        let s = cm.run(&[CmInstr::Route { messages }]);
        // Rounds are bounded by distance + serialization.
        prop_assert!(s.route_rounds <= dim as u64 + nontrivial);
        prop_assert!(s.route_rounds >= s.ideal_rounds.min(dim as u64));
    }

    #[test]
    fn vliw_schedule_is_a_permutation_respecting_deps(
        edges in proptest::collection::vec((1usize..40, 0usize..40), 0..60),
        width in 1usize..20,
    ) {
        // Build a DAG over 40 ops with edges (a -> b means b depends on a).
        let mut g = DepGraph::new();
        let mut deps: Vec<Vec<usize>> = vec![vec![]; 40];
        for (b, a) in edges {
            let b = b.min(39);
            if a < b {
                deps[b].push(a);
            }
        }
        for d in deps.iter() {
            let kinds = [OpKind::Alu, OpKind::Mem, OpKind::Branch];
            let kind = kinds[d.len() % 3];
            g.op(kind, d);
        }
        let m = Vliw { width, ..Vliw::default() };
        let s = m.schedule(&g);
        // Every op appears exactly once.
        let mut seen = vec![false; g.len()];
        for w in &s.words {
            prop_assert!(w.len() <= width);
            for &op in w {
                prop_assert!(!seen[op], "op {} scheduled twice", op);
                seen[op] = true;
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
        // Execution accounting: cycles == words + stalls.
        let mut rng = SimRng::seed(9);
        let st = m.execute(&s, 0.25, &mut rng);
        prop_assert_eq!(st.cycles.as_u64(), st.words + st.stall_cycles.as_u64());
    }
}
