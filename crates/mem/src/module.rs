//! A banked memory element with explicit service times.

use std::fmt;

use ttda_sim::stats::Counter;
use ttda_sim::Cycle;

/// A word address within one memory element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub usize);

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<usize> for Addr {
    fn from(v: usize) -> Self {
        Addr(v)
    }
}

/// The operation classes a [`MemoryModule`] distinguishes for timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One memory element of the abstract multiprocessor (Fig 1-1): a word
/// array divided into interleaved banks, each bank a FIFO server with a
/// fixed access time. Requests to distinct banks proceed in parallel;
/// requests to one bank serialize — the "bandwidth of each memory element
/// (bits per second per port)" bound of §1.1.
///
/// The module is generic over the stored word type so the same timing
/// model backs the von Neumann machines (`i64` words) and the dataflow
/// machine's program/structure stores.
///
/// # Example
///
/// ```
/// use ttda_mem::{Addr, MemOp, MemoryModule};
/// use ttda_sim::Cycle;
///
/// let mut m: MemoryModule<i64> = MemoryModule::new(1024, 4, Cycle(10));
/// m.store(Addr(7), 99).unwrap();
/// assert_eq!(m.load(Addr(7)), Some(&99));
/// // Timing: two same-bank accesses serialize.
/// let t1 = m.access_time(Cycle(0), Addr(0), MemOp::Read);
/// let t2 = m.access_time(Cycle(0), Addr(4), MemOp::Read); // bank 0 again (4 % 4)
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryModule<T> {
    words: Vec<Option<T>>,
    banks: usize,
    access: Cycle,
    bank_free: Vec<Cycle>,
    reads: Counter,
    writes: Counter,
}

impl<T> MemoryModule<T> {
    /// Creates a module of `size` words in `banks` interleaved banks with
    /// the given per-access service time.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    pub fn new(size: usize, banks: usize, access: Cycle) -> Self {
        assert!(banks > 0, "memory module needs at least one bank");
        MemoryModule {
            words: std::iter::repeat_with(|| None).take(size).collect(),
            banks,
            access,
            bank_free: vec![Cycle::ZERO; banks],
            reads: Counter::new(),
            writes: Counter::new(),
        }
    }

    /// Capacity in words.
    pub fn size(&self) -> usize {
        self.words.len()
    }

    /// The per-access service time.
    pub fn access_latency(&self) -> Cycle {
        self.access
    }

    /// The bank serving `addr`.
    pub fn bank_of(&self, addr: Addr) -> usize {
        addr.0 % self.banks
    }

    /// Functional read; `None` if out of range or never written.
    pub fn load(&self, addr: Addr) -> Option<&T> {
        self.words.get(addr.0).and_then(|w| w.as_ref())
    }

    /// Functional write.
    ///
    /// # Errors
    ///
    /// Returns the value back if `addr` is out of range.
    pub fn store(&mut self, addr: Addr, value: T) -> Result<(), T> {
        match self.words.get_mut(addr.0) {
            Some(slot) => {
                *slot = Some(value);
                Ok(())
            }
            None => Err(value),
        }
    }

    /// Timing model: when does an access issued at `now` complete?
    ///
    /// Occupies the addressed bank for one service time. Writes and reads
    /// cost the same here; I-structure writes cost double at the
    /// controller level (see
    /// [`IStructureController`](crate::IStructureController)), not here.
    pub fn access_time(&mut self, now: Cycle, addr: Addr, op: MemOp) -> Cycle {
        let bank = self.bank_of(addr);
        let start = now.max(self.bank_free[bank]);
        let done = start + self.access;
        self.bank_free[bank] = done;
        match op {
            MemOp::Read => self.reads.incr(),
            MemOp::Write => self.writes.incr(),
        }
        done
    }

    /// Total timed reads so far.
    pub fn read_count(&self) -> u64 {
        self.reads.get()
    }

    /// Total timed writes so far.
    pub fn write_count(&self) -> u64 {
        self.writes.get()
    }

    /// Clears timing state (bank queues) but not contents.
    pub fn reset_timing(&mut self) {
        self.bank_free.iter_mut().for_each(|b| *b = Cycle::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip() {
        let mut m: MemoryModule<&str> = MemoryModule::new(4, 2, Cycle(5));
        assert_eq!(m.load(Addr(0)), None);
        m.store(Addr(0), "hi").unwrap();
        assert_eq!(m.load(Addr(0)), Some(&"hi"));
        assert!(m.store(Addr(99), "nope").is_err());
        assert_eq!(m.load(Addr(99)), None);
    }

    #[test]
    fn distinct_banks_parallel_same_bank_serial() {
        let mut m: MemoryModule<i64> = MemoryModule::new(16, 4, Cycle(10));
        let a = m.access_time(Cycle(0), Addr(0), MemOp::Read);
        let b = m.access_time(Cycle(0), Addr(1), MemOp::Read);
        assert_eq!(a, b, "different banks serve concurrently");
        let c = m.access_time(Cycle(0), Addr(8), MemOp::Write); // bank 0
        assert_eq!(c, Cycle(20), "same bank queues");
        assert_eq!(m.read_count(), 2);
        assert_eq!(m.write_count(), 1);
    }

    #[test]
    fn reset_timing_clears_queues() {
        let mut m: MemoryModule<i64> = MemoryModule::new(4, 1, Cycle(10));
        m.access_time(Cycle(0), Addr(0), MemOp::Read);
        m.reset_timing();
        assert_eq!(m.access_time(Cycle(0), Addr(0), MemOp::Read), Cycle(10));
    }

    #[test]
    fn addr_display_and_from() {
        assert_eq!(Addr(7).to_string(), "@7");
        assert_eq!(Addr::from(3), Addr(3));
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        let _: MemoryModule<i64> = MemoryModule::new(4, 0, Cycle(1));
    }
}
