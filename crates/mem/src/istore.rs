//! I-structure storage: presence bits and deferred read lists (Fig 2-1).

use std::error::Error;
use std::fmt;

use ttda_sim::stats::Counter;
use ttda_sim::Cycle;
use ttda_trace::{PresenceState, SharedSink, TraceEvent};

use crate::module::Addr;
use crate::packed::PackedIStructure;

/// The presence bits associated with every I-structure cell.
///
/// The paper (§2.1): "special flags (called *presence* bits) which
/// indicate the memory cell's status — written or unwritten", plus the
/// third state a cell enters when a read arrives early and is "put aside".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Presence {
    /// Never written, no readers waiting.
    Empty,
    /// Written; reads are satisfied immediately.
    Present,
    /// Not yet written, but one or more read requests are deferred.
    Deferred,
}

impl Presence {
    /// The trace-layer mirror of this state.
    pub fn as_trace(self) -> PresenceState {
        match self {
            Presence::Empty => PresenceState::Empty,
            Presence::Present => PresenceState::Present,
            Presence::Deferred => PresenceState::Deferred,
        }
    }
}

/// What an I-structure read produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome<T> {
    /// The cell was full; here is its value.
    Value(T),
    /// The cell was empty; the request joined the deferred list and the
    /// caller will be released by the matching write.
    Deferred,
}

/// Errors from I-structure operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IStructureError {
    /// Address beyond the structure's bounds.
    OutOfRange {
        /// The offending address.
        addr: Addr,
        /// The structure size.
        size: usize,
    },
    /// A second write to a written (or once-written) cell — the
    /// write-write race §1.1 says should be caught by run-time checking.
    AlreadyWritten {
        /// The offending address.
        addr: Addr,
    },
}

impl fmt::Display for IStructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IStructureError::OutOfRange { addr, size } => {
                write!(f, "i-structure address {addr} out of range (size {size})")
            }
            IStructureError::AlreadyWritten { addr } => {
                write!(
                    f,
                    "write-write race: i-structure cell {addr} already written"
                )
            }
        }
    }
}

impl Error for IStructureError {}

#[derive(Debug, Clone)]
enum Cell<T, R> {
    Empty,
    Present(T),
    Deferred(Vec<R>),
}

/// The enum-cell I-structure store: write-once cells with presence bits
/// and deferred read lists, one Rust enum per cell and one heap `Vec`
/// per deferred list.
///
/// This is the direct transcription of Fig 2-1 and serves as the
/// *reference model*: the packed engine
/// ([`PackedIStructure`](crate::PackedIStructure), re-exported as
/// `IStructure`, which the engines actually run on) is checked against
/// it operation-for-operation by the model-equivalence property in the
/// test suite. Keep its semantics boring and obvious.
///
/// `T` is the stored value type; `R` identifies a pending reader (in the
/// TTDA it is the tag of the instruction waiting for the datum — "the
/// name of the instruction to which the contents should be forwarded").
///
/// Reads of full cells return immediately; reads of empty cells are
/// recorded on the per-cell deferred list ("the memory module puts the
/// read request aside"); the eventual write returns every deferred reader
/// so the controller can forward them the datum. A second write to any
/// cell is a detected error.
///
/// This functional core is untimed; [`IStructureController`] adds the
/// paper's service-time accounting (reads cost one memory cycle, writes
/// two) on top of the packed engine.
///
/// # Example
///
/// ```
/// use ttda_mem::{Addr, EnumIStructure, IStructureError, ReadOutcome};
///
/// let mut m: EnumIStructure<f64, u32> = EnumIStructure::new(4);
/// assert_eq!(m.read(Addr(0), 11).unwrap(), ReadOutcome::Deferred);
/// assert_eq!(m.read(Addr(0), 22).unwrap(), ReadOutcome::Deferred);
/// assert_eq!(m.write(Addr(0), 2.5).unwrap(), vec![11, 22]);
/// // Write-write race is caught:
/// assert_eq!(
///     m.write(Addr(0), 9.0).unwrap_err(),
///     IStructureError::AlreadyWritten { addr: Addr(0) }
/// );
/// ```
#[derive(Debug, Clone)]
pub struct EnumIStructure<T, R = u64> {
    cells: Vec<Cell<T, R>>,
    /// Running total of parked readers across all cells, maintained
    /// incrementally so per-wave diagnostics don't rescan every cell.
    deferred: usize,
}

impl<T, R> EnumIStructure<T, R> {
    /// Allocates a structure of `size` empty cells.
    pub fn new(size: usize) -> Self {
        EnumIStructure {
            cells: std::iter::repeat_with(|| Cell::Empty).take(size).collect(),
            deferred: 0,
        }
    }

    /// Number of cells.
    pub fn size(&self) -> usize {
        self.cells.len()
    }

    /// Total readers currently parked across every cell's deferred list.
    ///
    /// O(1): the count is maintained by [`read`](EnumIStructure::read),
    /// [`write`](EnumIStructure::write) and
    /// [`reclaim`](EnumIStructure::reclaim), mirroring
    /// [`IStructureShard::deferred_outstanding`](crate::IStructureShard::deferred_outstanding).
    pub fn deferred_outstanding(&self) -> usize {
        self.deferred
    }

    /// The presence bits of a cell.
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::OutOfRange`] for a bad address.
    pub fn presence(&self, addr: Addr) -> Result<Presence, IStructureError> {
        match self.cell(addr)? {
            Cell::Empty => Ok(Presence::Empty),
            Cell::Present(_) => Ok(Presence::Present),
            Cell::Deferred(_) => Ok(Presence::Deferred),
        }
    }

    /// Number of readers currently parked on `addr`'s deferred list.
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::OutOfRange`] for a bad address.
    pub fn deferred_count(&self, addr: Addr) -> Result<usize, IStructureError> {
        match self.cell(addr)? {
            Cell::Deferred(list) => Ok(list.len()),
            _ => Ok(0),
        }
    }

    fn cell(&self, addr: Addr) -> Result<&Cell<T, R>, IStructureError> {
        self.cells.get(addr.0).ok_or(IStructureError::OutOfRange {
            addr,
            size: self.cells.len(),
        })
    }

    fn cell_mut(&mut self, addr: Addr) -> Result<&mut Cell<T, R>, IStructureError> {
        let size = self.cells.len();
        self.cells
            .get_mut(addr.0)
            .ok_or(IStructureError::OutOfRange { addr, size })
    }
}

impl<T: Clone, R> EnumIStructure<T, R> {
    /// Processes a read request from `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::OutOfRange`] for a bad address.
    pub fn read(&mut self, addr: Addr, reader: R) -> Result<ReadOutcome<T>, IStructureError> {
        let cell = self.cell_mut(addr)?;
        match cell {
            Cell::Present(v) => Ok(ReadOutcome::Value(v.clone())),
            Cell::Empty => {
                *cell = Cell::Deferred(vec![reader]);
                self.deferred += 1;
                Ok(ReadOutcome::Deferred)
            }
            Cell::Deferred(list) => {
                list.push(reader);
                self.deferred += 1;
                Ok(ReadOutcome::Deferred)
            }
        }
    }

    /// Processes a write, returning the deferred readers to be released
    /// (in arrival order).
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::AlreadyWritten`] on a write-write race
    /// or [`IStructureError::OutOfRange`] for a bad address.
    pub fn write(&mut self, addr: Addr, value: T) -> Result<Vec<R>, IStructureError> {
        let cell = self.cell_mut(addr)?;
        match std::mem::replace(cell, Cell::Empty) {
            Cell::Present(old) => {
                *cell = Cell::Present(old);
                Err(IStructureError::AlreadyWritten { addr })
            }
            Cell::Empty => {
                *cell = Cell::Present(value);
                Ok(Vec::new())
            }
            Cell::Deferred(readers) => {
                *cell = Cell::Present(value);
                self.deferred -= readers.len();
                Ok(readers)
            }
        }
    }

    /// Streaming variant of [`write`](Self::write): invokes `release`
    /// once per deferred reader in arrival order and returns how many
    /// were released. Mirrors
    /// [`PackedIStructure::write_with`](crate::PackedIStructure::write_with)
    /// so benches and the model-equivalence property can drive both
    /// stores through the identical interface.
    ///
    /// # Errors
    ///
    /// See [`write`](Self::write).
    pub fn write_with(
        &mut self,
        addr: Addr,
        value: T,
        mut release: impl FnMut(R),
    ) -> Result<usize, IStructureError> {
        let released = self.write(addr, value)?;
        let n = released.len();
        for r in released {
            release(r);
        }
        Ok(n)
    }

    /// Visits every deferred reader currently parked in the structure.
    pub fn for_each_deferred(&self, mut f: impl FnMut(&R)) {
        for cell in &self.cells {
            if let Cell::Deferred(readers) = cell {
                for r in readers {
                    f(r);
                }
            }
        }
    }

    /// Reads without deferring (peek) — used by tests and debuggers, not
    /// by the machine.
    pub fn peek(&self, addr: Addr) -> Option<&T> {
        match self.cell(addr).ok()? {
            Cell::Present(v) => Some(v),
            _ => None,
        }
    }

    /// Resets every cell to `Empty`, dropping any deferred readers.
    ///
    /// Real I-structure storage is reclaimed wholesale by a storage
    /// manager once the structure's context dies; this models that. It is
    /// an error in the *program* if readers are still parked here, so the
    /// count of dropped readers is returned for the caller to assert on.
    pub fn reclaim(&mut self) -> usize {
        let mut dropped = 0;
        for cell in &mut self.cells {
            if let Cell::Deferred(list) = cell {
                dropped += list.len();
            }
            *cell = Cell::Empty;
        }
        self.deferred -= dropped;
        dropped
    }
}

/// Counters kept by an [`IStructureController`].
#[derive(Debug, Clone, Default)]
pub struct IStructureStats {
    /// Reads satisfied immediately.
    pub immediate_reads: u64,
    /// Reads parked on a deferred list.
    pub deferred_reads: u64,
    /// Writes performed.
    pub writes: u64,
    /// Deferred readers released by writes.
    pub releases: u64,
    /// Longest deferred list ever observed.
    pub max_deferred_list: usize,
}

/// A timed I-structure memory controller (the hardware of Heller's
/// controller design, the paper's reference 12).
///
/// Timing follows §2.1 exactly: "A read operation is as efficient as in a
/// traditional memory. Write operations take twice as long, however, due
/// to the prefetching of presence bits." The controller owns a single
/// service port (one request at a time), a base access time, and the
/// untimed packed store ([`PackedIStructure`](crate::PackedIStructure)).
///
/// # Example
///
/// ```
/// use ttda_mem::{Addr, IStructureController, ReadOutcome};
/// use ttda_sim::Cycle;
///
/// let mut c: IStructureController<i64, &str> = IStructureController::new(16, Cycle(10));
/// let (done_w, _) = c.write(Cycle(0), Addr(1), 5).unwrap();
/// let (done_r, out) = c.read(Cycle(done_w.as_u64()), Addr(1), "rdr").unwrap();
/// assert_eq!(out, ReadOutcome::Value(5));
/// assert_eq!(done_w, Cycle(20)); // write: 2x
/// assert_eq!(done_r - Cycle(20), Cycle(10)); // read: 1x
/// ```
#[derive(Clone)]
pub struct IStructureController<T, R = u64> {
    store: PackedIStructure<T, R>,
    access: Cycle,
    port_free: Cycle,
    stats: IStructureStats,
    ops: Counter,
    sink: Option<SharedSink>,
    module: u32,
}

impl<T: fmt::Debug, R: fmt::Debug> fmt::Debug for IStructureController<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IStructureController")
            .field("store", &self.store)
            .field("access", &self.access)
            .field("port_free", &self.port_free)
            .field("stats", &self.stats)
            .field("module", &self.module)
            .field("traced", &self.sink.is_some())
            .finish_non_exhaustive()
    }
}

impl<T: Clone, R> IStructureController<T, R> {
    /// Creates a controller over `size` cells with base access time
    /// `access`.
    pub fn new(size: usize, access: Cycle) -> Self {
        IStructureController {
            store: PackedIStructure::new(size),
            access,
            port_free: Cycle::ZERO,
            stats: IStructureStats::default(),
            ops: Counter::new(),
            sink: None,
            module: 0,
        }
    }

    /// Builder-style sink attachment, matching `Fabric::with_sink` and
    /// the engine `Machine::with_sink`; `module` labels this
    /// controller's events. Reads, writes, presence-bit transitions and
    /// deferred-list traffic are reported at their completion times.
    pub fn with_sink(mut self, sink: SharedSink, module: u32) -> Self {
        self.sink = Some(sink);
        self.module = module;
        self
    }

    /// The untimed store (for inspection).
    pub fn store(&self) -> &PackedIStructure<T, R> {
        &self.store
    }

    /// Controller statistics.
    pub fn stats(&self) -> &IStructureStats {
        &self.stats
    }

    /// Total requests serviced.
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    fn serve(&mut self, now: Cycle, cost: Cycle) -> Cycle {
        let start = now.max(self.port_free);
        let done = start + cost;
        self.port_free = done;
        self.ops.incr();
        done
    }

    /// Services a read issued at `now`; returns (completion time, outcome).
    ///
    /// A deferred read consumes the same port time as an immediate one —
    /// the deferral itself is free, which is the paper's whole point.
    ///
    /// # Errors
    ///
    /// Propagates [`IStructureError`] from the store.
    pub fn read(
        &mut self,
        now: Cycle,
        addr: Addr,
        reader: R,
    ) -> Result<(Cycle, ReadOutcome<T>), IStructureError> {
        let before = self.store.presence(addr)?;
        let outcome = self.store.read(addr, reader)?;
        let mut defer_depth = 0;
        match &outcome {
            ReadOutcome::Value(_) => self.stats.immediate_reads += 1,
            ReadOutcome::Deferred => {
                self.stats.deferred_reads += 1;
                defer_depth = self.store.deferred_count(addr)?;
                self.stats.max_deferred_list = self.stats.max_deferred_list.max(defer_depth);
            }
        }
        let done = self.serve(now, self.access);
        if let Some(sink) = &self.sink {
            let mut sink = sink.borrow_mut();
            let immediate = matches!(outcome, ReadOutcome::Value(_));
            sink.record(
                done,
                &TraceEvent::IStoreRead {
                    module: self.module,
                    immediate,
                },
            );
            if !immediate {
                sink.record(
                    done,
                    &TraceEvent::DeferEnqueue {
                        module: self.module,
                        depth: defer_depth as u64,
                    },
                );
                if before != Presence::Deferred {
                    sink.record(
                        done,
                        &TraceEvent::Presence {
                            module: self.module,
                            from: before.as_trace(),
                            to: PresenceState::Deferred,
                        },
                    );
                }
            }
        }
        Ok((done, outcome))
    }

    /// Services a write issued at `now`; returns (completion time,
    /// released readers). Costs 2× the base access time.
    ///
    /// # Errors
    ///
    /// Propagates [`IStructureError`] from the store — including the
    /// write-write race.
    pub fn write(
        &mut self,
        now: Cycle,
        addr: Addr,
        value: T,
    ) -> Result<(Cycle, Vec<R>), IStructureError> {
        let before = self.store.presence(addr)?;
        let released = self.store.write(addr, value)?;
        self.stats.writes += 1;
        self.stats.releases += released.len() as u64;
        let done = self.serve(now, self.access.saturating_mul(2));
        if let Some(sink) = &self.sink {
            let mut sink = sink.borrow_mut();
            sink.record(
                done,
                &TraceEvent::IStoreWrite {
                    module: self.module,
                },
            );
            sink.record(
                done,
                &TraceEvent::Presence {
                    module: self.module,
                    from: before.as_trace(),
                    to: PresenceState::Present,
                },
            );
            if !released.is_empty() {
                sink.record(
                    done,
                    &TraceEvent::DeferRelease {
                        module: self.module,
                        released: released.len() as u64,
                    },
                );
            }
        }
        Ok((done, released))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_after_write_is_immediate() {
        let mut m: EnumIStructure<i64> = EnumIStructure::new(2);
        m.write(Addr(0), 7).unwrap();
        assert_eq!(m.read(Addr(0), 1).unwrap(), ReadOutcome::Value(7));
        assert_eq!(m.presence(Addr(0)).unwrap(), Presence::Present);
        assert_eq!(m.peek(Addr(0)), Some(&7));
    }

    #[test]
    fn multiple_deferred_readers_released_in_order() {
        let mut m: EnumIStructure<i64, &str> = EnumIStructure::new(1);
        for r in ["a", "b", "c"] {
            assert_eq!(m.read(Addr(0), r).unwrap(), ReadOutcome::Deferred);
        }
        assert_eq!(m.presence(Addr(0)).unwrap(), Presence::Deferred);
        assert_eq!(m.deferred_count(Addr(0)).unwrap(), 3);
        assert_eq!(m.write(Addr(0), 1).unwrap(), vec!["a", "b", "c"]);
        assert_eq!(m.deferred_count(Addr(0)).unwrap(), 0);
    }

    #[test]
    fn write_write_race_detected_even_after_deferral() {
        let mut m: EnumIStructure<i64> = EnumIStructure::new(1);
        m.read(Addr(0), 9).unwrap();
        m.write(Addr(0), 1).unwrap();
        let err = m.write(Addr(0), 2).unwrap_err();
        assert_eq!(err, IStructureError::AlreadyWritten { addr: Addr(0) });
        // Original value undamaged by the failed write.
        assert_eq!(m.peek(Addr(0)), Some(&1));
    }

    #[test]
    fn out_of_range_errors() {
        let mut m: EnumIStructure<i64> = EnumIStructure::new(1);
        assert!(matches!(
            m.read(Addr(5), 0),
            Err(IStructureError::OutOfRange { .. })
        ));
        assert!(m.write(Addr(5), 0).is_err());
        assert!(m.presence(Addr(5)).is_err());
        let e = IStructureError::OutOfRange {
            addr: Addr(5),
            size: 1,
        };
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn deferred_outstanding_tracks_incrementally() {
        let mut m: EnumIStructure<i64> = EnumIStructure::new(3);
        assert_eq!(m.deferred_outstanding(), 0);
        m.read(Addr(0), 1).unwrap();
        m.read(Addr(0), 2).unwrap();
        m.read(Addr(1), 3).unwrap();
        assert_eq!(m.deferred_outstanding(), 3);
        m.write(Addr(0), 5).unwrap(); // releases two
        assert_eq!(m.deferred_outstanding(), 1);
        m.write(Addr(2), 6).unwrap(); // releases none
        assert_eq!(m.deferred_outstanding(), 1);
        assert_eq!(m.reclaim(), 1);
        assert_eq!(m.deferred_outstanding(), 0);
    }

    #[test]
    fn reclaim_reports_dropped_readers() {
        let mut m: EnumIStructure<i64> = EnumIStructure::new(3);
        m.read(Addr(0), 1).unwrap();
        m.read(Addr(0), 2).unwrap();
        m.write(Addr(1), 5).unwrap();
        assert_eq!(m.reclaim(), 2);
        assert_eq!(m.presence(Addr(1)).unwrap(), Presence::Empty);
    }

    #[test]
    fn controller_timing_read_1x_write_2x() {
        let mut c: IStructureController<i64> = IStructureController::new(4, Cycle(10));
        let (t_w, _) = c.write(Cycle(0), Addr(0), 1).unwrap();
        assert_eq!(t_w, Cycle(20));
        let (t_r, _) = c.read(Cycle(100), Addr(0), 0).unwrap();
        assert_eq!(t_r, Cycle(110));
    }

    #[test]
    fn controller_port_serializes() {
        let mut c: IStructureController<i64> = IStructureController::new(4, Cycle(10));
        let (a, _) = c.read(Cycle(0), Addr(0), 0).unwrap();
        let (b, _) = c.read(Cycle(0), Addr(1), 1).unwrap();
        assert_eq!(a, Cycle(10));
        assert_eq!(b, Cycle(20));
    }

    #[test]
    fn controller_stats_track_everything() {
        let mut c: IStructureController<i64> = IStructureController::new(4, Cycle(1));
        c.read(Cycle(0), Addr(0), 10).unwrap();
        c.read(Cycle(0), Addr(0), 11).unwrap();
        c.write(Cycle(0), Addr(0), 5).unwrap();
        c.read(Cycle(0), Addr(0), 12).unwrap();
        let s = c.stats();
        assert_eq!(s.deferred_reads, 2);
        assert_eq!(s.immediate_reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.releases, 2);
        assert_eq!(s.max_deferred_list, 2);
        assert_eq!(c.ops(), 4);
    }

    #[test]
    fn controller_sink_sees_lifecycle() {
        use ttda_trace::{shared, CountingSink};

        let sink = shared(CountingSink::new());
        let mut c: IStructureController<i64> =
            IStructureController::new(4, Cycle(1)).with_sink(sink.clone(), 7);
        c.read(Cycle(0), Addr(0), 10).unwrap(); // deferred
        c.read(Cycle(0), Addr(0), 11).unwrap(); // deferred, depth 2
        {
            let s = sink.borrow();
            let cs = s.as_any().downcast_ref::<CountingSink>().unwrap();
            assert_eq!(cs.deferred_outstanding(), 2);
            assert_eq!(cs.peak_defer_depth(), 2);
        }
        c.write(Cycle(0), Addr(0), 5).unwrap(); // releases both
        c.read(Cycle(0), Addr(0), 12).unwrap(); // immediate
        let s = sink.borrow();
        let cs = s.as_any().downcast_ref::<CountingSink>().unwrap();
        assert_eq!(cs.deferred_outstanding(), 0);
        assert_eq!(cs.metrics().counter_value("istore_read"), 3);
        assert_eq!(cs.metrics().counter_value("istore_read_immediate"), 1);
        assert_eq!(cs.metrics().counter_value("istore_write"), 1);
        assert_eq!(cs.metrics().counter_value("presence"), 2); // E->D, D->P
    }
}
