//! Memory-subsystem models for the TTDA suite.
//!
//! The paper's two fundamental issues both live in the memory system:
//!
//! - **Issue 1 (latency)** motivates [`MemoryModule`], a banked memory
//!   element with explicit service times, and [`cache`], the demand-cache
//!   and coherence machinery whose scaling pathologies §1.1 dissects
//!   (write-invalidate snooping and a Censier & Feautrier-style
//!   directory, with full traffic accounting);
//! - **Issue 2 (synchronization)** motivates [`IStructure`] — the paper's
//!   proposed memory with *presence bits* and *deferred read lists*
//!   (Fig 2-1) — and its foil, [`FullEmptyMemory`], the Denelcor-HEP-style
//!   memory of footnote 2 whose unsatisfiable requests busy-wait instead
//!   of deferring.
//!
//! # Example: the Fig 2-1 deferred read
//!
//! ```
//! use ttda_mem::{Addr, IStructure, ReadOutcome};
//!
//! let mut m: IStructure<i64, &str> = IStructure::new(8);
//! // A consumer reads slot 3 before the producer has written it: the
//! // request is set aside on the deferred list, not refused.
//! assert_eq!(m.read(Addr(3), "instruction x").unwrap(), ReadOutcome::Deferred);
//! // When the write arrives, the pending reader is released with the value.
//! let released = m.write(Addr(3), 42).unwrap();
//! assert_eq!(released, vec!["instruction x"]);
//! assert_eq!(m.read(Addr(3), "later").unwrap(), ReadOutcome::Value(42));
//! ```

#![warn(missing_docs)]

pub mod cache;
mod fullempty;
mod istore;
mod module;
mod packed;
mod shard;

pub use fullempty::{FullEmptyError, FullEmptyMemory, TryReadOutcome};
pub use istore::{
    EnumIStructure, IStructureController, IStructureError, IStructureStats, Presence, ReadOutcome,
};
pub use module::{Addr, MemOp, MemoryModule};
pub use packed::PackedIStructure;
pub use shard::{shard_of, IStructureShard};

/// The I-structure store the engines run on.
///
/// Since the packed-engine rework this is the bitmap/arena
/// implementation ([`PackedIStructure`]); the original enum-cell store
/// survives as [`EnumIStructure`], the reference model the packed
/// engine is property-checked against.
pub type IStructure<T, R = u64> = PackedIStructure<T, R>;
