//! Denelcor-HEP-style full/empty memory (the paper's footnote 2).

use std::error::Error;
use std::fmt;

use crate::module::Addr;

/// What a [`FullEmptyMemory::try_read`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryReadOutcome<T> {
    /// The cell was full: the value, which also resets the cell to empty
    /// when the read is consuming (HEP semantics for register sharing) or
    /// leaves it full otherwise.
    Value(T),
    /// The cell was empty: the requester must retry — "unsatisfiable
    /// requests result in a busy-waiting condition — i.e., there is no
    /// such thing as a deferred read list."
    BusyWait,
}

/// Errors from full/empty memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FullEmptyError {
    /// Address beyond the memory's bounds.
    OutOfRange {
        /// The offending address.
        addr: Addr,
        /// The memory size.
        size: usize,
    },
}

impl fmt::Display for FullEmptyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FullEmptyError::OutOfRange { addr, size } => {
                write!(f, "full/empty address {addr} out of range (size {size})")
            }
        }
    }
}

impl Error for FullEmptyError {}

/// A memory whose every cell carries one full/empty status bit, as in the
/// Denelcor HEP (Smith 1978), which the paper contrasts with I-structures:
/// both synchronize at the word level, but HEP's unsatisfied reads
/// busy-wait (retry) instead of being deferred, so early consumers burn
/// memory and network bandwidth polling.
///
/// Reads of empty cells return [`TryReadOutcome::BusyWait`] and bump a
/// retry counter — the quantity Experiment E6 charges against this design.
/// Writes to full cells also busy-wait (HEP write-when-empty).
///
/// # Example
///
/// ```
/// use ttda_mem::{Addr, FullEmptyMemory, TryReadOutcome};
///
/// let mut m: FullEmptyMemory<i64> = FullEmptyMemory::new(4);
/// assert_eq!(m.try_read(Addr(0)).unwrap(), TryReadOutcome::BusyWait);
/// assert!(m.try_write(Addr(0), 9).unwrap());
/// assert_eq!(m.try_read(Addr(0)).unwrap(), TryReadOutcome::Value(9));
/// assert_eq!(m.retries(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FullEmptyMemory<T> {
    cells: Vec<Option<T>>,
    retries: u64,
    write_retries: u64,
}

impl<T: Clone> FullEmptyMemory<T> {
    /// Allocates `size` empty cells.
    pub fn new(size: usize) -> Self {
        FullEmptyMemory {
            cells: std::iter::repeat_with(|| None).take(size).collect(),
            retries: 0,
            write_retries: 0,
        }
    }

    /// Number of cells.
    pub fn size(&self) -> usize {
        self.cells.len()
    }

    /// Non-consuming read-when-full.
    ///
    /// # Errors
    ///
    /// Returns [`FullEmptyError::OutOfRange`] for a bad address.
    pub fn try_read(&mut self, addr: Addr) -> Result<TryReadOutcome<T>, FullEmptyError> {
        let size = self.cells.len();
        let cell = self
            .cells
            .get(addr.0)
            .ok_or(FullEmptyError::OutOfRange { addr, size })?;
        match cell {
            Some(v) => Ok(TryReadOutcome::Value(v.clone())),
            None => {
                self.retries += 1;
                Ok(TryReadOutcome::BusyWait)
            }
        }
    }

    /// Consuming read: like [`FullEmptyMemory::try_read`] but empties the
    /// cell on success (HEP's producer/consumer register discipline).
    ///
    /// # Errors
    ///
    /// Returns [`FullEmptyError::OutOfRange`] for a bad address.
    pub fn try_take(&mut self, addr: Addr) -> Result<TryReadOutcome<T>, FullEmptyError> {
        let size = self.cells.len();
        let cell = self
            .cells
            .get_mut(addr.0)
            .ok_or(FullEmptyError::OutOfRange { addr, size })?;
        match cell.take() {
            Some(v) => Ok(TryReadOutcome::Value(v)),
            None => {
                self.retries += 1;
                Ok(TryReadOutcome::BusyWait)
            }
        }
    }

    /// Write-when-empty: returns `true` if the write landed, `false` if
    /// the cell was full and the writer must retry.
    ///
    /// # Errors
    ///
    /// Returns [`FullEmptyError::OutOfRange`] for a bad address.
    pub fn try_write(&mut self, addr: Addr, value: T) -> Result<bool, FullEmptyError> {
        let size = self.cells.len();
        let cell = self
            .cells
            .get_mut(addr.0)
            .ok_or(FullEmptyError::OutOfRange { addr, size })?;
        if cell.is_some() {
            self.write_retries += 1;
            Ok(false)
        } else {
            *cell = Some(value);
            Ok(true)
        }
    }

    /// Failed read attempts so far — each one was a wasted round trip
    /// through the network in a real machine.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Failed write attempts so far.
    pub fn write_retries(&self) -> u64 {
        self.write_retries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_wait_counts_retries() {
        let mut m: FullEmptyMemory<i64> = FullEmptyMemory::new(2);
        for _ in 0..5 {
            assert_eq!(m.try_read(Addr(0)).unwrap(), TryReadOutcome::BusyWait);
        }
        assert_eq!(m.retries(), 5);
        m.try_write(Addr(0), 1).unwrap();
        assert_eq!(m.try_read(Addr(0)).unwrap(), TryReadOutcome::Value(1));
        assert_eq!(m.retries(), 5);
    }

    #[test]
    fn take_empties_the_cell() {
        let mut m: FullEmptyMemory<i64> = FullEmptyMemory::new(1);
        m.try_write(Addr(0), 7).unwrap();
        assert_eq!(m.try_take(Addr(0)).unwrap(), TryReadOutcome::Value(7));
        assert_eq!(m.try_take(Addr(0)).unwrap(), TryReadOutcome::BusyWait);
    }

    #[test]
    fn write_when_full_retries() {
        let mut m: FullEmptyMemory<i64> = FullEmptyMemory::new(1);
        assert!(m.try_write(Addr(0), 1).unwrap());
        assert!(!m.try_write(Addr(0), 2).unwrap());
        assert_eq!(m.write_retries(), 1);
        assert_eq!(m.try_read(Addr(0)).unwrap(), TryReadOutcome::Value(1));
    }

    #[test]
    fn out_of_range() {
        let mut m: FullEmptyMemory<i64> = FullEmptyMemory::new(1);
        assert!(m.try_read(Addr(9)).is_err());
        assert!(m.try_take(Addr(9)).is_err());
        assert!(m.try_write(Addr(9), 0).is_err());
        let e = FullEmptyError::OutOfRange {
            addr: Addr(9),
            size: 1,
        };
        assert!(e.to_string().contains("out of range"));
    }
}
