//! Shard-aware I-structure access for parallel engines.
//!
//! A machine with one global structure table serializes every `I-FETCH`
//! and `I-STORE` on that table. The TTDA instead spreads structures over
//! independent storage modules; [`IStructureShard`] is the software
//! analogue: each worker thread owns the shard of structures whose ids
//! hash to it, so operations on different shards proceed with no shared
//! state at all. A shard also maintains its *outstanding deferred read*
//! count incrementally, so a coordinator can compute the machine-wide
//! figure (for peak-deferred statistics and deadlock detection) by
//! summing per-shard counters instead of walking every cell.
//!
//! Determinism note: operations on *distinct* structures commute, so a
//! coordinator that routes each operation to its owning shard and keeps
//! the per-shard operation streams in program order reproduces exactly
//! the cell states and released-reader orders of a fully sequential run.

use std::collections::HashMap;

use crate::istore::{IStructureError, ReadOutcome};
use crate::module::Addr;
use crate::IStructure;

/// The shard that owns structure `id` when the table is split `shards`
/// ways. Allocation ids are dense (0, 1, 2, …), so plain round-robin
/// already spreads consecutive allocations across shards.
pub fn shard_of(id: u32, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    id as usize % shards
}

/// One worker's slice of the structure table: the structures whose ids
/// hash to this shard, plus an incrementally-maintained count of
/// deferred reads outstanding within the shard.
///
/// Methods that address a structure return `None` when the id does not
/// live in this shard (either never allocated, or a routing bug in the
/// caller); the inner `Result` carries the per-cell errors of
/// [`IStructure`] itself.
#[derive(Debug)]
pub struct IStructureShard<T, R = u64> {
    stores: HashMap<u32, IStructure<T, R>>,
    deferred_outstanding: usize,
}

// Manual impl: the derive would demand `T: Default, R: Default`, which
// an empty shard does not need.
impl<T, R> Default for IStructureShard<T, R> {
    fn default() -> Self {
        IStructureShard::new()
    }
}

impl<T, R> IStructureShard<T, R> {
    /// An empty shard.
    pub fn new() -> Self {
        IStructureShard {
            stores: HashMap::new(),
            deferred_outstanding: 0,
        }
    }

    /// Adds a freshly allocated structure of `size` cells under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present: allocation ids are unique per
    /// run, so a collision is a coordinator bug, not a program error.
    pub fn create(&mut self, id: u32, size: usize) {
        let prev = self.stores.insert(id, IStructure::new(size));
        assert!(prev.is_none(), "duplicate i-structure allocation id {id}");
    }

    /// Adds a structure of `size` cells under `id` if it is not already
    /// present. Used by engines that materialize a module's slice of a
    /// structure lazily on first access (the timed machine's memory
    /// modules), where "already created" is the common case, not a bug.
    pub fn ensure(&mut self, id: u32, size: usize) {
        self.stores
            .entry(id)
            .or_insert_with(|| IStructure::new(size));
    }

    /// Shared access to a structure, if this shard owns it.
    pub fn store(&self, id: u32) -> Option<&IStructure<T, R>> {
        self.stores.get(&id)
    }

    /// Number of structures in the shard.
    pub fn len(&self) -> usize {
        self.stores.len()
    }

    /// Whether the shard holds no structures.
    pub fn is_empty(&self) -> bool {
        self.stores.is_empty()
    }

    /// Deferred reads currently parked across the whole shard. This is
    /// maintained incrementally by [`read`](Self::read) /
    /// [`write`](Self::write), so it is O(1).
    pub fn deferred_outstanding(&self) -> usize {
        self.deferred_outstanding
    }
}

impl<T: Clone, R> IStructureShard<T, R> {
    /// Reads `addr` of structure `id` on behalf of `reader`, updating
    /// the shard's outstanding-deferred count when the read parks.
    pub fn read(
        &mut self,
        id: u32,
        addr: Addr,
        reader: R,
    ) -> Option<Result<ReadOutcome<T>, IStructureError>> {
        let r = self.stores.get_mut(&id)?.read(addr, reader);
        if matches!(r, Ok(ReadOutcome::Deferred)) {
            self.deferred_outstanding += 1;
        }
        Some(r)
    }

    /// Writes `value` to `addr` of structure `id`, returning the
    /// released deferred readers (in arrival order) and decrementing the
    /// outstanding-deferred count by as many.
    pub fn write(
        &mut self,
        id: u32,
        addr: Addr,
        value: T,
    ) -> Option<Result<Vec<R>, IStructureError>> {
        let r = self.stores.get_mut(&id)?.write(addr, value);
        if let Ok(released) = &r {
            self.deferred_outstanding -= released.len();
        }
        Some(r)
    }

    /// Streaming variant of [`write`](Self::write): released readers go
    /// straight to `release` in arrival order (the engines' hot path —
    /// no `Vec` is allocated). Returns the release count on success.
    pub fn write_with(
        &mut self,
        id: u32,
        addr: Addr,
        value: T,
        release: impl FnMut(R),
    ) -> Option<Result<usize, IStructureError>> {
        let r = self.stores.get_mut(&id)?.write_with(addr, value, release);
        if let Ok(released) = &r {
            self.deferred_outstanding -= released;
        }
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_ownership() {
        assert_eq!(shard_of(0, 4), 0);
        assert_eq!(shard_of(5, 4), 1);
        assert_eq!(shard_of(7, 1), 0);
    }

    #[test]
    fn tracks_outstanding_deferred_incrementally() {
        let mut sh: IStructureShard<i64, &str> = IStructureShard::new();
        sh.create(2, 4);
        assert_eq!(sh.deferred_outstanding(), 0);
        assert_eq!(
            sh.read(2, Addr(0), "a").unwrap().unwrap(),
            ReadOutcome::Deferred
        );
        assert_eq!(
            sh.read(2, Addr(0), "b").unwrap().unwrap(),
            ReadOutcome::Deferred
        );
        assert_eq!(sh.deferred_outstanding(), 2);
        let released = sh.write(2, Addr(0), 9).unwrap().unwrap();
        assert_eq!(released, vec!["a", "b"]);
        assert_eq!(sh.deferred_outstanding(), 0);
        assert_eq!(
            sh.read(2, Addr(0), "c").unwrap().unwrap(),
            ReadOutcome::Value(9)
        );
        assert_eq!(sh.deferred_outstanding(), 0);
    }

    #[test]
    fn unknown_id_is_none_cell_error_is_inner() {
        let mut sh: IStructureShard<i64, u64> = IStructureShard::new();
        sh.create(0, 1);
        assert!(sh.read(3, Addr(0), 1).is_none());
        assert!(sh.write(0, Addr(7), 1).unwrap().is_err());
        // A failed access must not disturb the deferred count.
        assert_eq!(sh.deferred_outstanding(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_id_panics() {
        let mut sh: IStructureShard<i64, u64> = IStructureShard::new();
        sh.create(1, 1);
        sh.create(1, 2);
    }
}
