//! Demand caches and the coherence machinery of §1.1.
//!
//! The paper: "A dynamic scheme for exploiting locality is the (demand)
//! cache for main memory. This scheme is difficult to apply in a
//! multiprocessor context due to the cache coherence problem." This module
//! provides a multi-cache system with two coherence mechanisms —
//! bus-snooping write-invalidate and a Censier & Feautrier-style
//! directory — and with both *store-through* and *store-in* write
//! policies, so the scaling experiments (E3) can measure exactly the
//! overheads the paper predicts: invalidation traffic that grows with
//! sharing and with processor count.
//!
//! Addresses given to [`CoherentSystem`] are **line** addresses; callers
//! that think in bytes or words divide by their line size first.

use ttda_sim::Cycle;

use crate::module::Addr;

/// Store-through vs store-in (the paper's §1.1 terminology; today:
/// write-through vs write-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Every write is propagated to memory immediately; caches never hold
    /// dirty data. Other copies must still be invalidated — "using a
    /// store-through design instead of a store-in design does not
    /// completely solve the problem either".
    StoreThrough,
    /// Writes dirty the cache line; memory is updated on eviction or
    /// intervention (MSI states).
    StoreIn,
}

/// How invalidations find the other cached copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// A broadcast bus: every cache snoops every transaction. Cheap at
    /// small scale; the bus serializes and every transaction costs every
    /// cache a lookup.
    Snoop,
    /// A directory at memory tracks the sharer set per line (Censier &
    /// Feautrier 1978) and sends point-to-point invalidations.
    Directory,
}

/// Geometry and timing of a [`CoherentSystem`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of sets per cache.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Coherence mechanism.
    pub protocol: Protocol,
    /// Cycles for a cache hit.
    pub hit_latency: Cycle,
    /// Cycles for a main-memory access.
    pub memory_latency: Cycle,
    /// Cycles for one bus transaction / one directory message hop.
    pub bus_latency: Cycle,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            sets: 64,
            ways: 2,
            write_policy: WritePolicy::StoreIn,
            protocol: Protocol::Snoop,
            hit_latency: Cycle(1),
            memory_latency: Cycle(20),
            bus_latency: Cycle(4),
        }
    }
}

/// Traffic and outcome counters for a [`CoherentSystem`].
#[derive(Debug, Clone, Default)]
pub struct CoherenceStats {
    /// Read requests issued.
    pub reads: u64,
    /// Write requests issued.
    pub writes: u64,
    /// Requests satisfied locally with no coherence action.
    pub hits: u64,
    /// Requests that went to memory (or a remote cache).
    pub misses: u64,
    /// Cached copies killed in *other* caches.
    pub invalidations: u64,
    /// Dirty lines written back to memory.
    pub writebacks: u64,
    /// Bus transactions (snoop) or messages (directory) on the
    /// interconnect.
    pub coherence_traffic: u64,
    /// Writes propagated straight to memory (store-through only).
    pub write_throughs: u64,
}

impl CoherenceStats {
    /// Hit ratio over all accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Coherence messages per access — the paper's "overhead and/or
    /// decreased parallelism", in one number.
    pub fn traffic_per_access(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            0.0
        } else {
            self.coherence_traffic as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Shared,
    Modified,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: usize,
    state: State,
    lru: u64,
}

#[derive(Debug, Clone)]
struct CacheArray {
    sets: usize,
    ways: usize,
    lines: Vec<Option<Line>>,
    tick: u64,
}

impl CacheArray {
    fn new(sets: usize, ways: usize) -> Self {
        CacheArray {
            sets,
            ways,
            lines: vec![None; sets * ways],
            tick: 0,
        }
    }

    fn set_range(&self, addr: Addr) -> std::ops::Range<usize> {
        let set = addr.0 % self.sets;
        set * self.ways..(set + 1) * self.ways
    }

    fn lookup(&mut self, addr: Addr) -> Option<&mut Line> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(addr);
        let line = self.lines[range]
            .iter_mut()
            .flatten()
            .find(|l| l.tag == addr.0)?;
        line.lru = tick;
        Some(line)
    }

    fn peek_state(&self, addr: Addr) -> Option<State> {
        let range = self.set_range(addr);
        self.lines[range.clone()]
            .iter()
            .flatten()
            .find(|l| l.tag == addr.0)
            .map(|l| l.state)
    }

    /// Inserts `addr`, returning any evicted line.
    fn insert(&mut self, addr: Addr, state: State) -> Option<Line> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(addr);
        // Already present: update in place.
        if let Some(line) = self.lines[range.clone()]
            .iter_mut()
            .flatten()
            .find(|l| l.tag == addr.0)
        {
            line.state = state;
            line.lru = tick;
            return None;
        }
        // Empty way?
        let base = range.start;
        if let Some(i) = self.lines[range.clone()].iter().position(|l| l.is_none()) {
            self.lines[base + i] = Some(Line {
                tag: addr.0,
                state,
                lru: tick,
            });
            return None;
        }
        // Evict LRU.
        let victim_off = self.lines[range]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.map(|l| l.lru).unwrap_or(0))
            .map(|(i, _)| i)
            .expect("ways > 0");
        let victim = self.lines[base + victim_off];
        self.lines[base + victim_off] = Some(Line {
            tag: addr.0,
            state,
            lru: tick,
        });
        victim
    }

    fn invalidate(&mut self, addr: Addr) -> Option<State> {
        let range = self.set_range(addr);
        for slot in &mut self.lines[range] {
            if let Some(line) = slot {
                if line.tag == addr.0 {
                    let s = line.state;
                    *slot = None;
                    return Some(s);
                }
            }
        }
        None
    }

    fn downgrade(&mut self, addr: Addr) -> bool {
        let range = self.set_range(addr);
        for line in self.lines[range].iter_mut().flatten() {
            if line.tag == addr.0 && line.state == State::Modified {
                line.state = State::Shared;
                return true;
            }
        }
        false
    }
}

/// `n` private caches kept coherent over one shared memory.
///
/// [`CoherentSystem::read`] / [`CoherentSystem::write`] return the cycle
/// cost of the access, having performed all coherence actions and
/// recorded their traffic in [`CoherenceStats`]. The model is
/// sequentially consistent at the granularity of these calls: each call
/// completes before the next begins (the experiments interleave calls
/// from different processors explicitly).
///
/// # Example
///
/// ```
/// use ttda_mem::cache::{CacheConfig, CoherentSystem};
/// use ttda_mem::Addr;
///
/// let mut sys = CoherentSystem::new(2, CacheConfig::default());
/// sys.write(0, Addr(100)); // proc 0 dirties the line
/// sys.read(1, Addr(100));  // proc 1 pulls it: intervention + downgrade
/// let s = sys.stats();
/// assert_eq!(s.writebacks, 1);
/// assert!(s.coherence_traffic > 0);
/// ```
#[derive(Debug, Clone)]
pub struct CoherentSystem {
    caches: Vec<CacheArray>,
    config: CacheConfig,
    stats: CoherenceStats,
}

impl CoherentSystem {
    /// Creates a system of `procs` private caches.
    ///
    /// # Panics
    ///
    /// Panics if `procs == 0` or the config has zero sets/ways.
    pub fn new(procs: usize, config: CacheConfig) -> Self {
        assert!(procs > 0, "need at least one processor");
        assert!(
            config.sets > 0 && config.ways > 0,
            "cache geometry must be nonzero"
        );
        CoherentSystem {
            caches: (0..procs)
                .map(|_| CacheArray::new(config.sets, config.ways))
                .collect(),
            config,
            stats: CoherenceStats::default(),
        }
    }

    /// Number of processors/caches.
    pub fn procs(&self) -> usize {
        self.caches.len()
    }

    /// The configuration in force.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CoherenceStats {
        &self.stats
    }

    /// Resets statistics (not cache contents).
    pub fn reset_stats(&mut self) {
        self.stats = CoherenceStats::default();
    }

    /// True if `proc` currently holds `addr` (any state).
    pub fn is_cached(&self, proc: usize, addr: Addr) -> bool {
        self.caches[proc].peek_state(addr).is_some()
    }

    fn others_holding(&self, proc: usize, addr: Addr) -> Vec<usize> {
        (0..self.caches.len())
            .filter(|&p| p != proc && self.caches[p].peek_state(addr).is_some())
            .collect()
    }

    fn handle_eviction(&mut self, victim: Option<Line>) -> Cycle {
        match victim {
            Some(line) if line.state == State::Modified => {
                self.stats.writebacks += 1;
                self.stats.coherence_traffic += 1;
                self.config.memory_latency + self.config.bus_latency
            }
            Some(_) if self.config.protocol == Protocol::Directory => {
                // Shared eviction notice keeps the directory exact.
                self.stats.coherence_traffic += 1;
                self.config.bus_latency
            }
            _ => Cycle::ZERO,
        }
    }

    /// Processor `proc` reads line `addr`; returns the access cost.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn read(&mut self, proc: usize, addr: Addr) -> Cycle {
        self.stats.reads += 1;
        if self.caches[proc].lookup(addr).is_some() {
            self.stats.hits += 1;
            return self.config.hit_latency;
        }
        self.stats.misses += 1;
        let mut cost = self.config.hit_latency + self.config.bus_latency; // request out
        self.stats.coherence_traffic += 1;

        // A dirty copy elsewhere must be written back (intervention).
        let holders = self.others_holding(proc, addr);
        let mut from_memory = true;
        for p in &holders {
            if self.caches[*p].peek_state(addr) == Some(State::Modified) {
                self.caches[*p].downgrade(addr);
                self.stats.writebacks += 1;
                self.stats.coherence_traffic += 1;
                cost += self.config.bus_latency + self.config.memory_latency;
                from_memory = false;
            }
        }
        if from_memory {
            cost += self.config.memory_latency;
        }
        let victim = self.caches[proc].insert(addr, State::Shared);
        cost += self.handle_eviction(victim);
        cost
    }

    /// Processor `proc` writes line `addr`; returns the access cost.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn write(&mut self, proc: usize, addr: Addr) -> Cycle {
        self.stats.writes += 1;
        let holders = self.others_holding(proc, addr);
        let local = self.caches[proc].peek_state(addr);

        let mut cost = self.config.hit_latency;

        // Invalidate all other copies — "a mechanism which, upon the
        // occurrence of a write to location x, invalidates all other
        // cached copies of location x wherever they may occur".
        if !holders.is_empty() {
            match self.config.protocol {
                Protocol::Snoop => {
                    // One broadcast transaction kills them all.
                    self.stats.coherence_traffic += 1;
                    cost += self.config.bus_latency;
                }
                Protocol::Directory => {
                    // Directory lookup + one message per sharer + acks.
                    self.stats.coherence_traffic += 1 + 2 * holders.len() as u64;
                    cost += self.config.bus_latency
                        + self.config.bus_latency.saturating_mul(holders.len() as u64);
                }
            }
            for p in &holders {
                if self.caches[*p].invalidate(addr) == Some(State::Modified) {
                    self.stats.writebacks += 1;
                    cost += self.config.memory_latency;
                }
                self.stats.invalidations += 1;
            }
        }

        match self.config.write_policy {
            WritePolicy::StoreThrough => {
                // No allocate, no dirty state: the word goes to memory.
                self.stats.write_throughs += 1;
                self.stats.coherence_traffic += 1;
                cost += self.config.bus_latency + self.config.memory_latency;
                if local.is_some() {
                    self.stats.hits += 1;
                    // Keep our copy valid (updated in place).
                } else {
                    self.stats.misses += 1;
                }
            }
            WritePolicy::StoreIn => {
                match local {
                    Some(State::Modified) => {
                        self.stats.hits += 1;
                    }
                    Some(State::Shared) => {
                        // Upgrade; hit but with the invalidation cost above.
                        self.stats.hits += 1;
                        self.caches[proc].insert(addr, State::Modified);
                    }
                    None => {
                        self.stats.misses += 1;
                        self.stats.coherence_traffic += 1;
                        cost += self.config.bus_latency + self.config.memory_latency;
                        let victim = self.caches[proc].insert(addr, State::Modified);
                        cost += self.handle_eviction(victim);
                    }
                }
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig::default()
    }

    #[test]
    fn read_hit_after_miss() {
        let mut sys = CoherentSystem::new(1, cfg());
        let miss = sys.read(0, Addr(5));
        let hit = sys.read(0, Addr(5));
        assert!(miss > hit);
        assert_eq!(sys.stats().hits, 1);
        assert_eq!(sys.stats().misses, 1);
    }

    #[test]
    fn write_invalidates_other_copies() {
        let mut sys = CoherentSystem::new(4, cfg());
        for p in 0..4 {
            sys.read(p, Addr(9));
        }
        sys.write(0, Addr(9));
        assert_eq!(sys.stats().invalidations, 3);
        assert!(!sys.is_cached(1, Addr(9)));
        assert!(!sys.is_cached(3, Addr(9)));
        assert!(sys.is_cached(0, Addr(9)));
    }

    #[test]
    fn stale_copy_never_readable() {
        // The coherence definition of Censier & Feautrier: a LOAD always
        // sees the latest STORE. After p0 writes, p1's next read must miss
        // (traffic) rather than silently hit a stale line.
        let mut sys = CoherentSystem::new(2, cfg());
        sys.read(1, Addr(3));
        let before = sys.stats().misses;
        sys.write(0, Addr(3));
        sys.read(1, Addr(3));
        assert_eq!(
            sys.stats().misses,
            before + 2,
            "p0 write-miss + p1 re-fetch"
        );
    }

    #[test]
    fn dirty_intervention_causes_writeback() {
        let mut sys = CoherentSystem::new(2, cfg());
        sys.write(0, Addr(7)); // M in cache 0
        sys.read(1, Addr(7)); // intervention
        assert_eq!(sys.stats().writebacks, 1);
        // Both now shared; a further read by 0 is a hit.
        let c = sys.read(0, Addr(7));
        assert_eq!(c, sys.config().hit_latency);
    }

    #[test]
    fn store_through_always_touches_memory() {
        let mut c = cfg();
        c.write_policy = WritePolicy::StoreThrough;
        let mut sys = CoherentSystem::new(2, c);
        sys.read(0, Addr(1));
        let cost1 = sys.write(0, Addr(1));
        let cost2 = sys.write(0, Addr(1));
        assert_eq!(cost1, cost2, "every store-through write pays memory");
        assert_eq!(sys.stats().write_throughs, 2);
    }

    #[test]
    fn directory_traffic_scales_with_sharers() {
        let mut sc = cfg();
        sc.protocol = Protocol::Snoop;
        let mut dc = cfg();
        dc.protocol = Protocol::Directory;

        let measure = |mut sys: CoherentSystem, sharers: usize| {
            for p in 1..=sharers {
                sys.read(p, Addr(2));
            }
            let before = sys.stats().coherence_traffic;
            sys.write(0, Addr(2));
            sys.stats().coherence_traffic - before
        };
        let snoop = measure(CoherentSystem::new(8, sc), 7);
        let dir = measure(CoherentSystem::new(8, dc), 7);
        assert!(dir > snoop, "directory sends per-sharer messages");
    }

    #[test]
    fn eviction_of_dirty_line_writes_back() {
        let mut c = cfg();
        c.sets = 1;
        c.ways = 1; // direct-mapped, single line
        let mut sys = CoherentSystem::new(1, c);
        sys.write(0, Addr(0));
        sys.write(0, Addr(1)); // evicts dirty line 0
        assert_eq!(sys.stats().writebacks, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cfg();
        c.sets = 1;
        c.ways = 2;
        let mut sys = CoherentSystem::new(1, c);
        sys.read(0, Addr(10));
        sys.read(0, Addr(20));
        sys.read(0, Addr(10)); // 20 is now LRU
        sys.read(0, Addr(30)); // evicts 20
        assert!(sys.is_cached(0, Addr(10)));
        assert!(!sys.is_cached(0, Addr(20)));
        assert!(sys.is_cached(0, Addr(30)));
    }

    #[test]
    fn hit_ratio_and_traffic_helpers() {
        let mut sys = CoherentSystem::new(1, cfg());
        sys.read(0, Addr(0));
        sys.read(0, Addr(0));
        let s = sys.stats();
        assert!((s.hit_ratio() - 0.5).abs() < 1e-9);
        assert!(s.traffic_per_access() > 0.0);
        assert_eq!(CoherenceStats::default().hit_ratio(), 0.0);
        assert_eq!(CoherenceStats::default().traffic_per_access(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_panics() {
        let _ = CoherentSystem::new(0, cfg());
    }
}
