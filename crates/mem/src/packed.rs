//! Packed I-structure storage: presence bits as 2-bit bitmap words,
//! values in a flat arena, deferred readers in an intrusive list arena.
//!
//! The enum-cell [`EnumIStructure`](crate::EnumIStructure) models Fig 2-1
//! directly — one Rust enum per cell, one heap `Vec<R>` per deferred
//! list. That is the clearest possible statement of the paper's
//! semantics, but it pays an allocation on every first deferral and a
//! deallocation on every releasing write, and `reclaim` must walk every
//! cell even when the structure is almost empty. PR 3 showed that the
//! same treatment applied to the waiting–matching store (pack the hot
//! state into flat words, recycle slots through a free list) buys about
//! 2× token throughput; this module applies it to the second store on
//! every token's route.
//!
//! Layout — three flat arrays plus one node arena:
//!
//! - `state`: 2 bits per cell, 32 cells per `u64` word. Codes:
//!   `00` Empty, `01` Present, `10` Deferred, `11` Error (a detected
//!   write-write race; the cell *keeps its first value*, so for every
//!   read-path purpose Error behaves exactly like Present). Because the
//!   low bit of the code means "has a value" and the high bit means
//!   "something is parked/flagged", whole words classify with two shifts
//!   and a mask — [`reclaim`](PackedIStructure::reclaim) and the
//!   bitmap-audit helpers ([`deferred_cells`](PackedIStructure::deferred_cells),
//!   [`error_cells`](PackedIStructure::error_cells)) skip 32 empty cells
//!   per loop iteration.
//! - `values`: a flat arena indexed by cell id; slot `i` is meaningful
//!   only while `state` says cell `i` holds a value.
//! - `lists` + `nodes`: per-cell deferred-list heads/tails pointing into
//!   a single intrusive linked-list arena shared by all cells. Freed
//!   nodes are recycled through a free list, so steady-state
//!   read/defer/release does **zero allocation** — the arena only grows
//!   when the peak number of simultaneously parked readers grows.
//!
//! Release order is FIFO per cell (arrival order), identical to the
//! enum-cell store. That order is part of the determinism contract: the
//! parallel backend replays released readers in exactly this order when
//! merging shard outputs, so a reordering here would change `EmuResult`
//! between engines. The property suite in `tests/properties.rs` drives
//! both stores through random operation sequences and asserts outcome-
//! and order-equality.

use crate::istore::{IStructureError, Presence, ReadOutcome};
use crate::module::Addr;

/// Cells per `state` word (2 bits each).
const CELLS_PER_WORD: usize = 32;

/// Mask with the low bit of every 2-bit lane set.
const LANE_LO: u64 = 0x5555_5555_5555_5555;

/// Presence codes, one per 2-bit lane.
const EMPTY: u64 = 0b00;
const PRESENT: u64 = 0b01;
const DEFERRED: u64 = 0b10;
const ERROR: u64 = 0b11;

/// Null index in the node arena.
const NIL: u32 = u32::MAX;

/// One parked reader in the shared deferred-list arena. `reader` is
/// `None` only while the node sits on the free list.
#[derive(Debug, Clone)]
struct Node<R> {
    reader: Option<R>,
    next: u32,
}

/// A cell's deferred list: head/tail into the node arena plus the list
/// length (kept here so `deferred_count` stays O(1) like the enum
/// store's `Vec::len`).
#[derive(Debug, Clone, Copy)]
struct DeferList {
    head: u32,
    tail: u32,
    depth: u32,
}

impl DeferList {
    const EMPTY: DeferList = DeferList {
        head: NIL,
        tail: NIL,
        depth: 0,
    };
}

/// The packed I-structure store. Drop-in replacement for the enum-cell
/// [`EnumIStructure`](crate::EnumIStructure): same operations, same
/// outcomes, same FIFO release order — different constant factors.
///
/// `ttda_mem` re-exports this type as `IStructure`, so the three engines
/// (sequential emulator, parallel shards, timed memory modules) all run
/// on it without naming it specially.
///
/// # Example
///
/// ```
/// use ttda_mem::{Addr, IStructure, IStructureError, ReadOutcome};
///
/// let mut m: IStructure<f64, u32> = IStructure::new(4);
/// assert_eq!(m.read(Addr(0), 11).unwrap(), ReadOutcome::Deferred);
/// assert_eq!(m.read(Addr(0), 22).unwrap(), ReadOutcome::Deferred);
/// assert_eq!(m.write(Addr(0), 2.5).unwrap(), vec![11, 22]);
/// // Write-write race is caught (and flagged sticky, keeping the value):
/// assert_eq!(
///     m.write(Addr(0), 9.0).unwrap_err(),
///     IStructureError::AlreadyWritten { addr: Addr(0) }
/// );
/// assert_eq!(m.error_cells(), 1);
/// assert_eq!(m.peek(Addr(0)), Some(&2.5));
/// ```
#[derive(Debug, Clone)]
pub struct PackedIStructure<T, R = u64> {
    /// 2-bit presence codes, `CELLS_PER_WORD` cells per word.
    state: Vec<u64>,
    /// Number of cells.
    len: usize,
    /// Flat value arena indexed by cell id.
    values: Vec<Option<T>>,
    /// Per-cell deferred-list descriptors (meaningful while Deferred).
    lists: Vec<DeferList>,
    /// The shared intrusive reader arena.
    nodes: Vec<Node<R>>,
    /// Head of the recycled-node free list (threaded through `next`).
    free_head: u32,
    /// Running total of parked readers, maintained incrementally.
    deferred: usize,
}

impl<T, R> PackedIStructure<T, R> {
    /// Allocates a structure of `size` empty cells.
    pub fn new(size: usize) -> Self {
        PackedIStructure {
            state: vec![0; size.div_ceil(CELLS_PER_WORD)],
            len: size,
            values: (0..size).map(|_| None).collect(),
            lists: vec![DeferList::EMPTY; size],
            nodes: Vec::new(),
            free_head: NIL,
            deferred: 0,
        }
    }

    /// Number of cells.
    pub fn size(&self) -> usize {
        self.len
    }

    /// Total readers currently parked across every cell's deferred list.
    ///
    /// O(1): maintained incrementally by [`read`](Self::read),
    /// [`write`](Self::write) and [`reclaim`](Self::reclaim). The
    /// word-at-a-time bitmap audit ([`deferred_cells`](Self::deferred_cells))
    /// cross-checks it in the test suite.
    pub fn deferred_outstanding(&self) -> usize {
        self.deferred
    }

    fn check(&self, addr: Addr) -> Result<(), IStructureError> {
        if addr.0 < self.len {
            Ok(())
        } else {
            Err(IStructureError::OutOfRange {
                addr,
                size: self.len,
            })
        }
    }

    #[inline]
    fn code(&self, cell: usize) -> u64 {
        (self.state[cell / CELLS_PER_WORD] >> ((cell % CELLS_PER_WORD) * 2)) & 0b11
    }

    #[inline]
    fn set_code(&mut self, cell: usize, code: u64) {
        let word = &mut self.state[cell / CELLS_PER_WORD];
        let shift = (cell % CELLS_PER_WORD) * 2;
        *word = (*word & !(0b11 << shift)) | (code << shift);
    }

    /// The presence bits of a cell. An Error cell reports `Present`: the
    /// race left its first value intact, and presence bits describe what
    /// a reader will observe, not the race history (see
    /// [`errored`](Self::errored) for that).
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::OutOfRange`] for a bad address.
    pub fn presence(&self, addr: Addr) -> Result<Presence, IStructureError> {
        self.check(addr)?;
        Ok(match self.code(addr.0) {
            EMPTY => Presence::Empty,
            DEFERRED => Presence::Deferred,
            _ => Presence::Present,
        })
    }

    /// Whether a write-write race was detected on this cell.
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::OutOfRange`] for a bad address.
    pub fn errored(&self, addr: Addr) -> Result<bool, IStructureError> {
        self.check(addr)?;
        Ok(self.code(addr.0) == ERROR)
    }

    /// Number of readers currently parked on `addr`'s deferred list.
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::OutOfRange`] for a bad address.
    pub fn deferred_count(&self, addr: Addr) -> Result<usize, IStructureError> {
        self.check(addr)?;
        if self.code(addr.0) == DEFERRED {
            Ok(self.lists[addr.0].depth as usize)
        } else {
            Ok(0)
        }
    }

    /// Number of cells in the Deferred state, counted word-at-a-time
    /// from the presence bitmap (32 cells per iteration; a lane is
    /// Deferred iff its high bit is set and its low bit clear).
    pub fn deferred_cells(&self) -> usize {
        self.state
            .iter()
            .map(|w| ((w >> 1) & !w & LANE_LO).count_ones() as usize)
            .sum()
    }

    /// Number of cells whose write-write race flag is set, counted
    /// word-at-a-time (a lane is Error iff both its bits are set).
    pub fn error_cells(&self) -> usize {
        self.state
            .iter()
            .map(|w| (w & (w >> 1) & LANE_LO).count_ones() as usize)
            .sum()
    }

    /// Takes a node off the free list, or grows the arena.
    fn alloc_node(&mut self, reader: R) -> u32 {
        if self.free_head == NIL {
            let idx = u32::try_from(self.nodes.len()).expect("deferred-reader arena overflow");
            assert!(idx != NIL, "deferred-reader arena overflow");
            self.nodes.push(Node {
                reader: Some(reader),
                next: NIL,
            });
            idx
        } else {
            let idx = self.free_head;
            let node = &mut self.nodes[idx as usize];
            self.free_head = node.next;
            node.reader = Some(reader);
            node.next = NIL;
            idx
        }
    }
}

impl<T: Clone, R> PackedIStructure<T, R> {
    /// Processes a read request from `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::OutOfRange`] for a bad address.
    pub fn read(&mut self, addr: Addr, reader: R) -> Result<ReadOutcome<T>, IStructureError> {
        self.check(addr)?;
        let cell = addr.0;
        // Fast path: a cell holds a value exactly in the Present and
        // Error states (an errored cell keeps its first value), so an
        // immediate read is a single arena probe — the bitmap is only
        // consulted to tell Empty from Deferred when it must park.
        if let Some(v) = &self.values[cell] {
            return Ok(ReadOutcome::Value(v.clone()));
        }
        match self.code(cell) {
            EMPTY => {
                let n = self.alloc_node(reader);
                self.lists[cell] = DeferList {
                    head: n,
                    tail: n,
                    depth: 1,
                };
                self.set_code(cell, DEFERRED);
                self.deferred += 1;
                Ok(ReadOutcome::Deferred)
            }
            DEFERRED => {
                let n = self.alloc_node(reader);
                let tail = self.lists[cell].tail;
                self.nodes[tail as usize].next = n;
                let list = &mut self.lists[cell];
                list.tail = n;
                list.depth += 1;
                self.deferred += 1;
                Ok(ReadOutcome::Deferred)
            }
            // Present or Error: the value is there either way.
            _ => Ok(ReadOutcome::Value(
                self.values[cell]
                    .clone()
                    .expect("present cell holds a value"),
            )),
        }
    }

    /// Processes a write, invoking `release` once per deferred reader in
    /// arrival (FIFO) order and returning how many were released.
    ///
    /// This is the zero-allocation path the engines use: released
    /// readers stream straight into the caller's output queue, and the
    /// freed list nodes go back on the free list for the next deferral.
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::AlreadyWritten`] on a write-write race
    /// (the cell keeps its first value and its race flag is set sticky)
    /// or [`IStructureError::OutOfRange`] for a bad address.
    pub fn write_with(
        &mut self,
        addr: Addr,
        value: T,
        mut release: impl FnMut(R),
    ) -> Result<usize, IStructureError> {
        self.check(addr)?;
        let cell = addr.0;
        match self.code(cell) {
            EMPTY => {
                self.values[cell] = Some(value);
                self.set_code(cell, PRESENT);
                Ok(0)
            }
            DEFERRED => {
                let list = self.lists[cell];
                self.lists[cell] = DeferList::EMPTY;
                let mut cur = list.head;
                while cur != NIL {
                    let node = &mut self.nodes[cur as usize];
                    let reader = node.reader.take().expect("live node holds a reader");
                    let next = node.next;
                    node.next = self.free_head;
                    self.free_head = cur;
                    cur = next;
                    release(reader);
                }
                self.deferred -= list.depth as usize;
                self.values[cell] = Some(value);
                self.set_code(cell, PRESENT);
                Ok(list.depth as usize)
            }
            _ => {
                // Write-write race: keep the first value, flag the cell.
                self.set_code(cell, ERROR);
                Err(IStructureError::AlreadyWritten { addr })
            }
        }
    }

    /// Processes a write, returning the deferred readers to be released
    /// (in arrival order). Allocates the returned `Vec`; hot paths use
    /// [`write_with`](Self::write_with) instead.
    ///
    /// # Errors
    ///
    /// See [`write_with`](Self::write_with).
    pub fn write(&mut self, addr: Addr, value: T) -> Result<Vec<R>, IStructureError> {
        let mut out = Vec::new();
        self.write_with(addr, value, |r| out.push(r))?;
        Ok(out)
    }

    /// Visits every deferred reader currently parked in the structure,
    /// in cell order then arrival order (matching the enum store).
    pub fn for_each_deferred(&self, mut f: impl FnMut(&R)) {
        for (wi, word) in self.state.iter().enumerate() {
            let mut lanes = (word >> 1) & !word & LANE_LO;
            while lanes != 0 {
                let cell = wi * CELLS_PER_WORD + lanes.trailing_zeros() as usize / 2;
                let mut cur = self.lists[cell].head;
                while cur != NIL {
                    let node = &self.nodes[cur as usize];
                    f(node.reader.as_ref().expect("live node holds a reader"));
                    cur = node.next;
                }
                lanes &= lanes - 1;
            }
        }
    }

    /// Reads without deferring (peek) — used by tests and debuggers, not
    /// by the machine.
    pub fn peek(&self, addr: Addr) -> Option<&T> {
        if addr.0 < self.len && self.code(addr.0) & PRESENT != 0 {
            self.values[addr.0].as_ref()
        } else {
            None
        }
    }

    /// Resets every cell to `Empty`, dropping any deferred readers and
    /// returning how many were dropped (the caller asserts on it — parked
    /// readers at reclaim time are a *program* error).
    ///
    /// This is the word-at-a-time sweep: a state word of zero is 32
    /// already-empty cells skipped in one compare, and only occupied
    /// cells have their value slot or deferred list touched, so
    /// reclaiming a sparsely-written structure costs proportional to its
    /// occupancy, not its size.
    pub fn reclaim(&mut self) -> usize {
        let mut dropped = 0;
        for wi in 0..self.state.len() {
            let word = self.state[wi];
            if word == 0 {
                continue;
            }
            let mut lanes = (word | (word >> 1)) & LANE_LO;
            while lanes != 0 {
                let off = lanes.trailing_zeros() as usize / 2;
                lanes &= lanes - 1;
                let cell = wi * CELLS_PER_WORD + off;
                if (word >> (off * 2)) & 0b11 == DEFERRED {
                    let list = self.lists[cell];
                    self.lists[cell] = DeferList::EMPTY;
                    let mut cur = list.head;
                    while cur != NIL {
                        let node = &mut self.nodes[cur as usize];
                        node.reader = None;
                        let next = node.next;
                        node.next = self.free_head;
                        self.free_head = cur;
                        cur = next;
                    }
                    dropped += list.depth as usize;
                } else {
                    // Present or Error: drop the value.
                    self.values[cell] = None;
                }
            }
            self.state[wi] = 0;
        }
        debug_assert_eq!(dropped, self.deferred, "bitmap/counter drift");
        self.deferred = 0;
        dropped
    }

    /// Number of nodes currently sitting on the free list (test/debug
    /// aid for the recycling invariant).
    #[doc(hidden)]
    pub fn free_nodes(&self) -> usize {
        let mut n = 0;
        let mut cur = self.free_head;
        while cur != NIL {
            n += 1;
            cur = self.nodes[cur as usize].next;
        }
        n
    }

    /// Capacity of the node arena (test/debug aid: steady state must not
    /// grow it).
    #[doc(hidden)]
    pub fn node_arena_len(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_after_write_is_immediate() {
        let mut m: PackedIStructure<i64> = PackedIStructure::new(2);
        m.write(Addr(0), 7).unwrap();
        assert_eq!(m.read(Addr(0), 1).unwrap(), ReadOutcome::Value(7));
        assert_eq!(m.presence(Addr(0)).unwrap(), Presence::Present);
        assert_eq!(m.peek(Addr(0)), Some(&7));
        assert_eq!(m.peek(Addr(1)), None);
    }

    #[test]
    fn deferred_readers_released_fifo() {
        let mut m: PackedIStructure<i64, &str> = PackedIStructure::new(1);
        for r in ["a", "b", "c"] {
            assert_eq!(m.read(Addr(0), r).unwrap(), ReadOutcome::Deferred);
        }
        assert_eq!(m.presence(Addr(0)).unwrap(), Presence::Deferred);
        assert_eq!(m.deferred_count(Addr(0)).unwrap(), 3);
        assert_eq!(m.deferred_cells(), 1);
        assert_eq!(m.write(Addr(0), 1).unwrap(), vec!["a", "b", "c"]);
        assert_eq!(m.deferred_count(Addr(0)).unwrap(), 0);
        assert_eq!(m.deferred_cells(), 0);
    }

    #[test]
    fn free_list_recycles_nodes_zero_growth() {
        let mut m: PackedIStructure<i64> = PackedIStructure::new(8);
        // Prime the arena: 4 readers parked at once.
        for r in 0..4 {
            m.read(Addr(r as usize % 2), r).unwrap();
        }
        m.write(Addr(0), 1).unwrap();
        m.write(Addr(1), 2).unwrap();
        let arena = m.node_arena_len();
        assert_eq!(arena, 4);
        assert_eq!(m.free_nodes(), 4);
        // Steady state below the peak: the arena must not grow.
        for round in 0..10 {
            m.reclaim();
            for r in 0..4 {
                m.read(Addr(r as usize), 100 + r + round).unwrap();
            }
            for a in 0..4 {
                m.write(Addr(a), a as i64).unwrap();
            }
            assert_eq!(m.node_arena_len(), arena);
            assert_eq!(m.free_nodes(), arena);
        }
    }

    #[test]
    fn write_write_race_flags_error_and_keeps_value() {
        let mut m: PackedIStructure<i64> = PackedIStructure::new(1);
        m.read(Addr(0), 9).unwrap();
        m.write(Addr(0), 1).unwrap();
        let err = m.write(Addr(0), 2).unwrap_err();
        assert_eq!(err, IStructureError::AlreadyWritten { addr: Addr(0) });
        // First value undamaged; presence still reads Present, but the
        // sticky race flag is observable.
        assert_eq!(m.peek(Addr(0)), Some(&1));
        assert_eq!(m.presence(Addr(0)).unwrap(), Presence::Present);
        assert!(m.errored(Addr(0)).unwrap());
        assert_eq!(m.error_cells(), 1);
        // Reads of an errored cell still see the first value; a third
        // write still races.
        assert_eq!(m.read(Addr(0), 5).unwrap(), ReadOutcome::Value(1));
        assert!(m.write(Addr(0), 3).is_err());
        assert_eq!(m.error_cells(), 1);
        // Reclaim clears the flag.
        m.reclaim();
        assert_eq!(m.error_cells(), 0);
        assert_eq!(m.presence(Addr(0)).unwrap(), Presence::Empty);
    }

    #[test]
    fn out_of_range_errors() {
        let mut m: PackedIStructure<i64> = PackedIStructure::new(1);
        assert!(matches!(
            m.read(Addr(5), 0),
            Err(IStructureError::OutOfRange { .. })
        ));
        assert!(m.write(Addr(5), 0).is_err());
        assert!(m.presence(Addr(5)).is_err());
        assert!(m.errored(Addr(5)).is_err());
        assert!(m.deferred_count(Addr(5)).is_err());
        assert_eq!(m.peek(Addr(5)), None);
    }

    #[test]
    fn zero_sized_structure_rejects_everything() {
        let mut m: PackedIStructure<i64> = PackedIStructure::new(0);
        assert_eq!(m.size(), 0);
        assert!(m.read(Addr(0), 0).is_err());
        assert!(m.write(Addr(0), 0).is_err());
        assert_eq!(m.reclaim(), 0);
    }

    #[test]
    fn deferred_outstanding_tracks_incrementally() {
        let mut m: PackedIStructure<i64> = PackedIStructure::new(3);
        assert_eq!(m.deferred_outstanding(), 0);
        m.read(Addr(0), 1).unwrap();
        m.read(Addr(0), 2).unwrap();
        m.read(Addr(1), 3).unwrap();
        assert_eq!(m.deferred_outstanding(), 3);
        assert_eq!(m.deferred_cells(), 2);
        m.write(Addr(0), 5).unwrap();
        assert_eq!(m.deferred_outstanding(), 1);
        m.write(Addr(2), 6).unwrap();
        assert_eq!(m.deferred_outstanding(), 1);
        assert_eq!(m.reclaim(), 1);
        assert_eq!(m.deferred_outstanding(), 0);
    }

    #[test]
    fn reclaim_sweeps_word_boundaries() {
        // Cells straddling several 32-cell state words, sparsely used.
        let mut m: PackedIStructure<i64> = PackedIStructure::new(200);
        for c in [0usize, 31, 32, 63, 64, 199] {
            m.write(Addr(c), c as i64).unwrap();
        }
        m.read(Addr(95), 7).unwrap();
        assert_eq!(m.reclaim(), 1);
        for c in [0usize, 31, 32, 63, 64, 95, 199] {
            assert_eq!(m.presence(Addr(c)).unwrap(), Presence::Empty);
            assert_eq!(m.peek(Addr(c)), None);
        }
        // Everything is reusable after the sweep.
        m.write(Addr(95), 1).unwrap();
        assert_eq!(m.read(Addr(95), 8).unwrap(), ReadOutcome::Value(1));
    }

    #[test]
    fn for_each_deferred_visits_in_cell_then_arrival_order() {
        let mut m: PackedIStructure<i64, u32> = PackedIStructure::new(70);
        m.read(Addr(64), 30).unwrap();
        m.read(Addr(2), 10).unwrap();
        m.read(Addr(2), 11).unwrap();
        m.read(Addr(64), 31).unwrap();
        let mut seen = Vec::new();
        m.for_each_deferred(|r| seen.push(*r));
        assert_eq!(seen, vec![10, 11, 30, 31]);
    }

    #[test]
    fn write_with_streams_releases_without_vec() {
        let mut m: PackedIStructure<i64, u32> = PackedIStructure::new(1);
        for r in 0..5 {
            m.read(Addr(0), r).unwrap();
        }
        let mut out = Vec::new();
        let n = m.write_with(Addr(0), 42, |r| out.push(r)).unwrap();
        assert_eq!(n, 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }
}

#[cfg(test)]
mod hot_key_tests {
    use super::*;
    use ttda_sim::{SimRng, Zipf};

    /// Hot-key contention drill for the deferred arena: a Zipf-hot cell
    /// cycles through park → release-all → re-park many times, with cold
    /// cells parking in between, so the free list keeps recycling nodes
    /// into the hot cell's list. The FIFO contract must hold every
    /// round: releases stream in arrival order, and the recycled arena
    /// never grows past the peak concurrent parking demand.
    #[test]
    fn hot_cell_fifo_survives_arena_recycling() {
        let size = 32;
        let mut m: PackedIStructure<i64, u64> = PackedIStructure::new(size);
        let zipf = Zipf::new(size, 1.5);
        let mut rng = SimRng::seed(0x5eed);
        let mut next_reader: u64 = 0;
        let mut parked: Vec<Vec<u64>> = vec![Vec::new(); size];
        let mut peak_parked = 0usize;
        for round in 0..40 {
            // Park a Zipf-skewed batch of readers.
            for _ in 0..rng.gen_range(3usize..12) {
                let cell = zipf.sample(&mut rng);
                assert_eq!(
                    m.read(Addr(cell), next_reader).unwrap(),
                    ReadOutcome::Deferred,
                    "round {round}: unwritten cell must defer"
                );
                parked[cell].push(next_reader);
                next_reader += 1;
            }
            peak_parked = peak_parked.max(m.deferred_outstanding());
            // Release the hottest currently-parked cell; arrival order
            // is the contract.
            let hot = (0..size)
                .max_by_key(|&c| parked[c].len())
                .expect("some cell parked");
            let mut released = Vec::new();
            m.write_with(Addr(hot), hot as i64, |r| released.push(r))
                .unwrap();
            assert_eq!(
                released,
                std::mem::take(&mut parked[hot]),
                "round {round}: release order must be arrival order"
            );
            // Reclaim resets everything, pushing all nodes through the
            // free list so the next round re-parks on recycled storage.
            let dropped = m.reclaim();
            assert_eq!(
                dropped,
                parked.iter().map(Vec::len).sum::<usize>(),
                "round {round}: reclaim must drop exactly the still-parked readers"
            );
            parked.iter_mut().for_each(Vec::clear);
            assert_eq!(m.deferred_outstanding(), 0);
        }
        // Steady state: the arena holds no more nodes than the worst
        // round needed at once — recycling, not leaking.
        assert!(
            m.node_arena_len() <= peak_parked,
            "arena grew to {} nodes for a peak demand of {peak_parked}",
            m.node_arena_len()
        );
    }
}
