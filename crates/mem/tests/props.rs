//! Property tests for the memory models, driven by the in-tree
//! `check` harness.

use ttda_mem::cache::{CacheConfig, CoherentSystem, Protocol, WritePolicy};
use ttda_mem::{Addr, FullEmptyMemory, IStructureController, MemOp, MemoryModule, TryReadOutcome};
use ttda_sim::{check, Cycle};

#[test]
fn every_cache_access_is_hit_or_miss() {
    check::forall("every cache access is hit or miss", |rng| {
        let policy = if rng.chance(0.5) {
            WritePolicy::StoreIn
        } else {
            WritePolicy::StoreThrough
        };
        let protocol = if rng.chance(0.5) {
            Protocol::Snoop
        } else {
            Protocol::Directory
        };
        let cfg = CacheConfig {
            write_policy: policy,
            protocol,
            ..CacheConfig::default()
        };
        let mut sys = CoherentSystem::new(4, cfg);
        let ops = rng.gen_range(1usize..300);
        for _ in 0..ops {
            let p = rng.gen_range(0usize..4);
            let addr = Addr(rng.gen_range(0usize..64));
            let c = if rng.chance(0.5) {
                sys.write(p, addr)
            } else {
                sys.read(p, addr)
            };
            assert!(c > Cycle::ZERO);
        }
        let s = sys.stats();
        assert_eq!(s.hits + s.misses, s.reads + s.writes);
    });
}

#[test]
fn coherence_no_stale_read_hits() {
    check::forall("coherence no stale read hits", |rng| {
        // Model check: a processor's read hit must return the latest
        // write. We shadow the protocol with a "who could be stale" set:
        // after p writes line a, every other processor's copy is stale
        // until it re-fetches. A read that hits while stale is a bug.
        let mut sys = CoherentSystem::new(3, CacheConfig::default());
        let mut stale = [[false; 8]; 3];
        let ops = rng.gen_range(1usize..200);
        for _ in 0..ops {
            let p = rng.gen_range(0usize..3);
            let a = rng.gen_range(0usize..8);
            if rng.chance(0.5) {
                sys.write(p, Addr(a));
                for (q, row) in stale.iter_mut().enumerate() {
                    row[a] = q != p;
                }
            } else {
                let had_copy = sys.is_cached(p, Addr(a));
                let before_hits = sys.stats().hits;
                sys.read(p, Addr(a));
                let was_hit = sys.stats().hits > before_hits;
                if was_hit && had_copy {
                    assert!(!stale[p][a], "proc {p} read stale line {a} as a hit");
                }
                stale[p][a] = false;
            }
        }
    });
}

#[test]
fn memory_module_bank_times_never_decrease() {
    check::forall("memory module bank times never decrease", |rng| {
        let mut m: MemoryModule<i64> = MemoryModule::new(64, 4, Cycle(7));
        let mut per_bank: [Cycle; 4] = [Cycle::ZERO; 4];
        let accesses = rng.gen_range(1usize..100);
        for _ in 0..accesses {
            let addr = Addr(rng.gen_range(0usize..64));
            let op = if rng.chance(0.5) {
                MemOp::Write
            } else {
                MemOp::Read
            };
            let done = m.access_time(Cycle::ZERO, addr, op);
            let bank = m.bank_of(addr);
            assert!(done > per_bank[bank]);
            per_bank[bank] = done;
        }
    });
}

#[test]
fn istructure_controller_port_is_fifo() {
    check::forall("istructure controller port is fifo", |rng| {
        let mut c: IStructureController<i64, usize> = IStructureController::new(16, Cycle(5));
        let mut last = Cycle::ZERO;
        let mut written = [false; 16];
        let ops = rng.gen_range(1usize..80);
        for i in 0..ops {
            let addr = rng.gen_range(0usize..16);
            let done = if rng.chance(0.5) {
                match c.write(Cycle::ZERO, Addr(addr), i as i64) {
                    Ok((done, _)) => {
                        written[addr] = true;
                        done
                    }
                    Err(_) => {
                        assert!(written[addr], "write-write error only after a write");
                        continue;
                    }
                }
            } else {
                c.read(Cycle::ZERO, Addr(addr), i).unwrap().0
            };
            assert!(done > last, "port must serialize");
            last = done;
        }
    });
}

#[test]
fn full_empty_read_returns_latest_write() {
    check::forall("full/empty read returns latest write", |rng| {
        let mut m: FullEmptyMemory<i64> = FullEmptyMemory::new(8);
        let mut shadow: [Option<i64>; 8] = [None; 8];
        let ops = rng.gen_range(1usize..120);
        for _ in 0..ops {
            let a = rng.gen_range(0usize..8);
            let v = rng.gen_range(-50i64..50);
            if rng.chance(0.5) {
                let ok = m.try_write(Addr(a), v).unwrap();
                assert_eq!(ok, shadow[a].is_none());
                if ok {
                    shadow[a] = Some(v);
                }
            } else {
                match m.try_read(Addr(a)).unwrap() {
                    TryReadOutcome::Value(got) => assert_eq!(Some(got), shadow[a]),
                    TryReadOutcome::BusyWait => assert!(shadow[a].is_none()),
                }
            }
        }
    });
}
