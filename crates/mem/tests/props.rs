//! Property tests for the memory models.

use proptest::prelude::*;
use ttda_mem::cache::{CacheConfig, CoherentSystem, Protocol, WritePolicy};
use ttda_mem::{Addr, FullEmptyMemory, IStructureController, MemOp, MemoryModule, TryReadOutcome};
use ttda_sim::Cycle;

proptest! {
    #[test]
    fn every_cache_access_is_hit_or_miss(
        ops in proptest::collection::vec((0usize..4, 0usize..64, any::<bool>()), 1..300),
        policy in prop_oneof![Just(WritePolicy::StoreIn), Just(WritePolicy::StoreThrough)],
        protocol in prop_oneof![Just(Protocol::Snoop), Just(Protocol::Directory)],
    ) {
        let cfg = CacheConfig { write_policy: policy, protocol, ..CacheConfig::default() };
        let mut sys = CoherentSystem::new(4, cfg);
        for (p, addr, is_write) in ops {
            let c = if is_write { sys.write(p, Addr(addr)) } else { sys.read(p, Addr(addr)) };
            prop_assert!(c > Cycle::ZERO);
        }
        let s = sys.stats();
        prop_assert_eq!(s.hits + s.misses, s.reads + s.writes);
    }

    #[test]
    fn coherence_no_stale_read_hits(
        ops in proptest::collection::vec((0usize..3, 0usize..8, any::<bool>()), 1..200),
    ) {
        // Model check: a processor's read hit must return the latest
        // write. We shadow the protocol with a "who could be stale" set:
        // after p writes line a, every other processor's copy is stale
        // until it re-fetches. A read that hits while stale is a bug.
        let mut sys = CoherentSystem::new(3, CacheConfig::default());
        let mut stale = [[false; 8]; 3];
        for (p, a, is_write) in ops {
            if is_write {
                sys.write(p, Addr(a));
                for q in 0..3 {
                    if q != p {
                        stale[q][a] = true;
                    }
                }
                stale[p][a] = false;
            } else {
                let had_copy = sys.is_cached(p, Addr(a));
                let before_hits = sys.stats().hits;
                sys.read(p, Addr(a));
                let was_hit = sys.stats().hits > before_hits;
                if was_hit && had_copy {
                    prop_assert!(!stale[p][a], "proc {p} read stale line {a} as a hit");
                }
                stale[p][a] = false;
            }
        }
    }

    #[test]
    fn memory_module_bank_times_never_decrease(accesses in proptest::collection::vec((0usize..64, any::<bool>()), 1..100)) {
        let mut m: MemoryModule<i64> = MemoryModule::new(64, 4, Cycle(7));
        let mut per_bank: [Cycle; 4] = [Cycle::ZERO; 4];
        for (addr, w) in accesses {
            let op = if w { MemOp::Write } else { MemOp::Read };
            let done = m.access_time(Cycle::ZERO, Addr(addr), op);
            let bank = m.bank_of(Addr(addr));
            prop_assert!(done > per_bank[bank]);
            per_bank[bank] = done;
        }
    }

    #[test]
    fn istructure_controller_port_is_fifo(ops in proptest::collection::vec((0usize..16, any::<bool>()), 1..80)) {
        let mut c: IStructureController<i64, usize> = IStructureController::new(16, Cycle(5));
        let mut last = Cycle::ZERO;
        let mut written = [false; 16];
        for (i, (addr, is_write)) in ops.into_iter().enumerate() {
            let done = if is_write {
                match c.write(Cycle::ZERO, Addr(addr), i as i64) {
                    Ok((done, _)) => {
                        written[addr] = true;
                        done
                    }
                    Err(_) => {
                        prop_assert!(written[addr], "write-write error only after a write");
                        continue;
                    }
                }
            } else {
                c.read(Cycle::ZERO, Addr(addr), i).unwrap().0
            };
            prop_assert!(done > last, "port must serialize");
            last = done;
        }
    }

    #[test]
    fn full_empty_read_returns_latest_write(ops in proptest::collection::vec((0usize..8, -50i64..50, any::<bool>()), 1..120)) {
        let mut m: FullEmptyMemory<i64> = FullEmptyMemory::new(8);
        let mut shadow: [Option<i64>; 8] = [None; 8];
        for (a, v, is_write) in ops {
            if is_write {
                let ok = m.try_write(Addr(a), v).unwrap();
                prop_assert_eq!(ok, shadow[a].is_none());
                if ok {
                    shadow[a] = Some(v);
                }
            } else {
                match m.try_read(Addr(a)).unwrap() {
                    TryReadOutcome::Value(got) => prop_assert_eq!(Some(got), shadow[a]),
                    TryReadOutcome::BusyWait => prop_assert!(shadow[a].is_none()),
                }
            }
        }
    }
}
