//! The aggregating sink: counts every event and checks the lifecycle
//! invariants the paper's claims rest on.

use std::any::Any;

use ttda_sim::Cycle;

use crate::{Metrics, TraceEvent, TraceSink};

/// A sink that aggregates events into a [`Metrics`] registry and keeps
/// the running ledgers needed to check trace invariants:
///
/// - **Token conservation** — every emitted token is consumed by exactly
///   one waiting–matching section, so at a clean halt
///   `emitted == consumed + in_flight` with `in_flight == 0`.
/// - **No stranded deferred reads** — at quiescence every deferred read
///   has been released by its producer's write.
/// - **Hop accounting** — total hops from `packet_send` events equal the
///   sum of per-packet routing distances, so traces can be checked
///   against `Topology::hops`.
#[derive(Debug, Default)]
pub struct CountingSink {
    metrics: Metrics,
    halt_in_flight: Option<u64>,
    total_hops: u64,
    per_packet_hops: Vec<u32>,
    peak_match_occupancy: u64,
    peak_defer_depth: u64,
}

impl CountingSink {
    /// An empty counting sink.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// The aggregated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Tokens emitted so far.
    pub fn tokens_emitted(&self) -> u64 {
        self.metrics.counter_value("token_emit")
    }

    /// Tokens consumed by waiting–matching sections so far.
    pub fn tokens_consumed(&self) -> u64 {
        self.metrics.counter_value("token_consume")
    }

    /// The `in_flight` count reported by the machine's halt event, if a
    /// halt has been observed.
    pub fn in_flight_at_halt(&self) -> Option<u64> {
        self.halt_in_flight
    }

    /// Deferred reads still outstanding (enqueued minus released).
    pub fn deferred_outstanding(&self) -> i64 {
        let enq = self.metrics.counter_value("defer_enqueue") as i64;
        let rel = self.metrics.counter_value("defer_released_readers") as i64;
        enq - rel
    }

    /// Network packets observed.
    pub fn packets(&self) -> u64 {
        self.metrics.counter_value("packet_send")
    }

    /// Total hops across all packets.
    pub fn total_hops(&self) -> u64 {
        self.total_hops
    }

    /// Hop count of every packet, in send order (for checking against
    /// `Topology::hops`).
    pub fn per_packet_hops(&self) -> &[u32] {
        &self.per_packet_hops
    }

    /// Highest waiting–matching occupancy seen on any single PE.
    pub fn peak_match_occupancy(&self) -> u64 {
        self.peak_match_occupancy
    }

    /// Longest deferred list seen on any single cell.
    pub fn peak_defer_depth(&self) -> u64 {
        self.peak_defer_depth
    }

    /// Token conservation: `emitted == consumed + in_flight(halt)`.
    ///
    /// Returns `false` until a halt event has been observed.
    pub fn token_conservation_holds(&self) -> bool {
        match self.halt_in_flight {
            Some(in_flight) => self.tokens_emitted() == self.tokens_consumed() + in_flight,
            None => false,
        }
    }

    /// Quiescence invariant: halted with nothing in flight and no
    /// deferred read still parked.
    pub fn quiescent(&self) -> bool {
        self.halt_in_flight == Some(0) && self.deferred_outstanding() == 0
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, _at: Cycle, ev: &TraceEvent) {
        self.metrics.counter(ev.kind()).incr();
        match *ev {
            TraceEvent::MatchWait { occupancy, .. } => {
                self.peak_match_occupancy = self.peak_match_occupancy.max(occupancy);
                self.metrics
                    .histogram("match_occupancy", 64, 4)
                    .record(occupancy);
            }
            TraceEvent::MatchFire { alu, busy, .. } => {
                if alu {
                    self.metrics.counter("alu_fires").incr();
                }
                self.metrics.histogram("fire_busy", 32, 2).record(busy);
            }
            TraceEvent::WaveEnd { fired } => {
                self.metrics.histogram("wave_width", 64, 4).record(fired);
            }
            TraceEvent::Halt { in_flight } => {
                self.halt_in_flight = Some(in_flight);
            }
            TraceEvent::DeferEnqueue { depth, .. } => {
                self.peak_defer_depth = self.peak_defer_depth.max(depth);
                self.metrics.histogram("defer_depth", 32, 1).record(depth);
            }
            TraceEvent::DeferRelease { released, .. } => {
                self.metrics.counter("defer_released_readers").add(released);
            }
            TraceEvent::IStoreRead { immediate, .. } if immediate => {
                self.metrics.counter("istore_read_immediate").incr();
            }
            TraceEvent::PacketSend {
                hops,
                queued,
                latency,
                ..
            } => {
                self.total_hops += hops as u64;
                self.per_packet_hops.push(hops);
                self.metrics
                    .histogram("packet_hops", 16, 1)
                    .record(hops as u64);
                self.metrics
                    .histogram("packet_queued", 64, 8)
                    .record(queued);
                self.metrics
                    .histogram("packet_latency", 64, 8)
                    .record(latency);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PresenceState;

    fn rec(s: &mut CountingSink, ev: TraceEvent) {
        s.record(Cycle(0), &ev);
    }

    #[test]
    fn conservation_ledger() {
        let mut s = CountingSink::new();
        for _ in 0..5 {
            rec(&mut s, TraceEvent::TokenEmit { pe: 0 });
        }
        for _ in 0..5 {
            rec(&mut s, TraceEvent::TokenConsume { pe: 0 });
        }
        assert!(!s.token_conservation_holds(), "no halt seen yet");
        rec(&mut s, TraceEvent::Halt { in_flight: 0 });
        assert!(s.token_conservation_holds());
        assert!(s.quiescent());

        // A sixth emit breaks the books.
        rec(&mut s, TraceEvent::TokenEmit { pe: 0 });
        assert!(!s.token_conservation_holds());
    }

    #[test]
    fn deferred_ledger_balances() {
        let mut s = CountingSink::new();
        rec(
            &mut s,
            TraceEvent::DeferEnqueue {
                module: 0,
                depth: 1,
            },
        );
        rec(
            &mut s,
            TraceEvent::DeferEnqueue {
                module: 0,
                depth: 2,
            },
        );
        assert_eq!(s.deferred_outstanding(), 2);
        assert_eq!(s.peak_defer_depth(), 2);
        rec(
            &mut s,
            TraceEvent::DeferRelease {
                module: 0,
                released: 2,
            },
        );
        assert_eq!(s.deferred_outstanding(), 0);
    }

    #[test]
    fn hop_accounting() {
        let mut s = CountingSink::new();
        rec(
            &mut s,
            TraceEvent::PacketSend {
                from: 0,
                to: 3,
                hops: 2,
                queued: 0,
                latency: 6,
            },
        );
        rec(
            &mut s,
            TraceEvent::PacketSend {
                from: 1,
                to: 2,
                hops: 3,
                queued: 4,
                latency: 13,
            },
        );
        assert_eq!(s.packets(), 2);
        assert_eq!(s.total_hops(), 5);
        assert_eq!(s.per_packet_hops(), &[2, 3]);
    }

    #[test]
    fn misc_events_are_counted_by_kind() {
        let mut s = CountingSink::new();
        rec(
            &mut s,
            TraceEvent::Presence {
                module: 0,
                from: PresenceState::Empty,
                to: PresenceState::Present,
            },
        );
        rec(&mut s, TraceEvent::IStoreWrite { module: 0 });
        rec(
            &mut s,
            TraceEvent::IStoreRead {
                module: 0,
                immediate: true,
            },
        );
        rec(
            &mut s,
            TraceEvent::MatchFire {
                pe: 0,
                alu: true,
                busy: 3,
            },
        );
        assert_eq!(s.metrics().counter_value("presence"), 1);
        assert_eq!(s.metrics().counter_value("istore_write"), 1);
        assert_eq!(s.metrics().counter_value("istore_read_immediate"), 1);
        assert_eq!(s.metrics().counter_value("alu_fires"), 1);
    }
}
