//! The recording sink: verbatim event capture with JSONL and
//! `chrome://tracing` (`trace_event` format) export.

use std::any::Any;
use std::fmt::Write as _;

use ttda_sim::Cycle;

use crate::{PresenceState, TraceEvent, TraceSink};

/// A sink that records every `(time, event)` pair and serializes the run
/// as either JSONL (one self-describing object per line) or the Chrome
/// `trace_event` JSON that `chrome://tracing` and Perfetto open directly.
///
/// In the Chrome view, processing elements appear as threads of process
/// 0 (firings as duration slices, waiting–matching occupancy as counter
/// tracks), I-structure modules as threads of process 1, and the network
/// as process 2 (packets as duration slices whose length is end-to-end
/// latency).
///
/// # Example
///
/// ```
/// use ttda_trace::{ChromeTraceSink, TraceEvent, TraceSink};
/// use ttda_sim::Cycle;
///
/// let mut sink = ChromeTraceSink::new();
/// sink.record(Cycle(2), &TraceEvent::MatchFire { pe: 0, alu: true, busy: 3 });
/// assert_eq!(sink.len(), 1);
/// assert!(sink.to_chrome_json().contains("\"ph\":\"X\""));
/// assert!(sink.to_jsonl().contains("\"kind\":\"match_fire\""));
/// ```
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    events: Vec<(Cycle, TraceEvent)>,
}

fn presence_name(p: PresenceState) -> &'static str {
    match p {
        PresenceState::Empty => "empty",
        PresenceState::Present => "present",
        PresenceState::Deferred => "deferred",
    }
}

impl ChromeTraceSink {
    /// An empty recorder.
    pub fn new() -> Self {
        ChromeTraceSink::default()
    }

    /// Number of events captured.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The raw captured events.
    pub fn events(&self) -> &[(Cycle, TraceEvent)] {
        &self.events
    }

    /// Serializes the capture as JSONL: one object per event, each with
    /// `ts`, `kind`, and the event's own fields.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for (at, ev) in &self.events {
            let _ = write!(out, "{{\"ts\":{},\"kind\":\"{}\"", at.as_u64(), ev.kind());
            match *ev {
                TraceEvent::TokenEmit { pe } | TraceEvent::TokenConsume { pe } => {
                    let _ = write!(out, ",\"pe\":{pe}");
                }
                TraceEvent::MatchWait { pe, occupancy } => {
                    let _ = write!(out, ",\"pe\":{pe},\"occupancy\":{occupancy}");
                }
                TraceEvent::MatchFire { pe, alu, busy } => {
                    let _ = write!(out, ",\"pe\":{pe},\"alu\":{alu},\"busy\":{busy}");
                }
                TraceEvent::WaveEnd { fired } => {
                    let _ = write!(out, ",\"fired\":{fired}");
                }
                TraceEvent::Halt { in_flight } => {
                    let _ = write!(out, ",\"in_flight\":{in_flight}");
                }
                TraceEvent::Presence { module, from, to } => {
                    let _ = write!(
                        out,
                        ",\"module\":{module},\"from\":\"{}\",\"to\":\"{}\"",
                        presence_name(from),
                        presence_name(to)
                    );
                }
                TraceEvent::DeferEnqueue { module, depth } => {
                    let _ = write!(out, ",\"module\":{module},\"depth\":{depth}");
                }
                TraceEvent::DeferRelease { module, released } => {
                    let _ = write!(out, ",\"module\":{module},\"released\":{released}");
                }
                TraceEvent::IStoreRead { module, immediate } => {
                    let _ = write!(out, ",\"module\":{module},\"immediate\":{immediate}");
                }
                TraceEvent::IStoreWrite { module } => {
                    let _ = write!(out, ",\"module\":{module}");
                }
                TraceEvent::WorkSteal { pe, from, moved } => {
                    let _ = write!(out, ",\"pe\":{pe},\"from\":{from},\"moved\":{moved}");
                }
                TraceEvent::PacketSend {
                    from,
                    to,
                    hops,
                    queued,
                    latency,
                } => {
                    let _ = write!(
                        out,
                        ",\"from\":{from},\"to\":{to},\"hops\":{hops},\"queued\":{queued},\"latency\":{latency}"
                    );
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Serializes the capture in Chrome `trace_event` format.
    ///
    /// Cycles are reported as microseconds (`ts`/`dur`), which makes one
    /// machine cycle one microsecond on the tracing timeline.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 64);
        out.push_str("{\"traceEvents\":[\n");
        let mut first = true;
        let mut emit = |line: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&line);
        };
        for (at, ev) in &self.events {
            let ts = at.as_u64();
            let line = match *ev {
                TraceEvent::MatchFire { pe, alu, busy } => format!(
                    "{{\"name\":\"fire\",\"ph\":\"X\",\"pid\":0,\"tid\":{pe},\"ts\":{ts},\"dur\":{},\"args\":{{\"alu\":{alu}}}}}",
                    busy.max(1)
                ),
                TraceEvent::MatchWait { pe, occupancy } => format!(
                    "{{\"name\":\"match_occupancy\",\"ph\":\"C\",\"pid\":0,\"tid\":{pe},\"ts\":{ts},\"args\":{{\"entries\":{occupancy}}}}}"
                ),
                TraceEvent::TokenEmit { pe } => format!(
                    "{{\"name\":\"token_emit\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{pe},\"ts\":{ts}}}"
                ),
                TraceEvent::TokenConsume { pe } => format!(
                    "{{\"name\":\"token_consume\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{pe},\"ts\":{ts}}}"
                ),
                TraceEvent::WaveEnd { fired } => format!(
                    "{{\"name\":\"wave_width\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{ts},\"args\":{{\"fired\":{fired}}}}}"
                ),
                TraceEvent::Halt { in_flight } => format!(
                    "{{\"name\":\"halt\",\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":{ts},\"args\":{{\"in_flight\":{in_flight}}}}}"
                ),
                TraceEvent::Presence { module, from, to } => format!(
                    "{{\"name\":\"presence\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{module},\"ts\":{ts},\"args\":{{\"from\":\"{}\",\"to\":\"{}\"}}}}",
                    presence_name(from),
                    presence_name(to)
                ),
                TraceEvent::DeferEnqueue { module, depth } => format!(
                    "{{\"name\":\"defer_depth\",\"ph\":\"C\",\"pid\":1,\"tid\":{module},\"ts\":{ts},\"args\":{{\"depth\":{depth}}}}}"
                ),
                TraceEvent::DeferRelease { module, released } => format!(
                    "{{\"name\":\"defer_release\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{module},\"ts\":{ts},\"args\":{{\"released\":{released}}}}}"
                ),
                TraceEvent::IStoreRead { module, immediate } => format!(
                    "{{\"name\":\"istore_read\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{module},\"ts\":{ts},\"args\":{{\"immediate\":{immediate}}}}}"
                ),
                TraceEvent::IStoreWrite { module } => format!(
                    "{{\"name\":\"istore_write\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{module},\"ts\":{ts}}}"
                ),
                TraceEvent::WorkSteal { pe, from, moved } => format!(
                    "{{\"name\":\"work_steal\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{pe},\"ts\":{ts},\"args\":{{\"from\":{from},\"moved\":{moved}}}}}"
                ),
                TraceEvent::PacketSend { from, to, hops, queued, latency } => format!(
                    "{{\"name\":\"packet\",\"ph\":\"X\",\"pid\":2,\"tid\":{from},\"ts\":{ts},\"dur\":{},\"args\":{{\"to\":{to},\"hops\":{hops},\"queued\":{queued}}}}}",
                    latency.max(1)
                ),
            };
            emit(line, &mut out);
        }
        out.push_str("\n]}\n");
        out
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&mut self, at: Cycle, ev: &TraceEvent) {
        self.events.push((at, *ev));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChromeTraceSink {
        let mut s = ChromeTraceSink::new();
        s.record(Cycle(0), &TraceEvent::TokenEmit { pe: 1 });
        s.record(
            Cycle(1),
            &TraceEvent::MatchWait {
                pe: 1,
                occupancy: 1,
            },
        );
        s.record(
            Cycle(2),
            &TraceEvent::MatchFire {
                pe: 1,
                alu: true,
                busy: 3,
            },
        );
        s.record(
            Cycle(3),
            &TraceEvent::Presence {
                module: 0,
                from: PresenceState::Empty,
                to: PresenceState::Deferred,
            },
        );
        s.record(
            Cycle(4),
            &TraceEvent::PacketSend {
                from: 0,
                to: 5,
                hops: 2,
                queued: 1,
                latency: 9,
            },
        );
        s.record(Cycle(9), &TraceEvent::Halt { in_flight: 0 });
        s
    }

    #[test]
    fn jsonl_is_one_valid_looking_object_per_line() {
        let s = sample();
        let jsonl = s.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), s.len());
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"ts\":"));
            assert!(line.contains("\"kind\":"));
            // Balanced braces (no nested objects in JSONL lines).
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn chrome_json_has_trace_events_envelope() {
        let s = sample();
        let json = s.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2); // fire + packet
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn every_event_kind_serializes_in_both_formats() {
        let evs = [
            TraceEvent::TokenEmit { pe: 0 },
            TraceEvent::TokenConsume { pe: 0 },
            TraceEvent::MatchWait {
                pe: 0,
                occupancy: 2,
            },
            TraceEvent::MatchFire {
                pe: 0,
                alu: false,
                busy: 0,
            },
            TraceEvent::WaveEnd { fired: 4 },
            TraceEvent::Halt { in_flight: 1 },
            TraceEvent::Presence {
                module: 3,
                from: PresenceState::Deferred,
                to: PresenceState::Present,
            },
            TraceEvent::DeferEnqueue {
                module: 3,
                depth: 2,
            },
            TraceEvent::DeferRelease {
                module: 3,
                released: 2,
            },
            TraceEvent::IStoreRead {
                module: 3,
                immediate: false,
            },
            TraceEvent::IStoreWrite { module: 3 },
            TraceEvent::WorkSteal {
                pe: 1,
                from: 0,
                moved: 4,
            },
            TraceEvent::PacketSend {
                from: 1,
                to: 2,
                hops: 1,
                queued: 0,
                latency: 3,
            },
        ];
        let mut s = ChromeTraceSink::new();
        for ev in &evs {
            s.record(Cycle(7), ev);
        }
        assert_eq!(s.to_jsonl().lines().count(), evs.len());
        for ev in &evs {
            assert!(s.to_jsonl().contains(ev.kind()), "{} missing", ev.kind());
        }
        let chrome = s.to_chrome_json();
        assert_eq!(chrome.matches("\"ts\":7").count(), evs.len());
    }
}
