//! Token-lifecycle tracing and metrics for the TTDA suite.
//!
//! The paper's Section-3 testbed exists to *observe* where tokens spend
//! their time — in the waiting–matching store, on deferred I-structure
//! read lists, and in the packet network. This crate is that
//! observability layer for the reproduction: a small event vocabulary
//! ([`TraceEvent`]), a sink trait ([`TraceSink`]) that the hot paths of
//! `ttda-core`, `ttda-mem` and `ttda-net` report into, and two concrete
//! sinks:
//!
//! - [`CountingSink`] aggregates events into a [`Metrics`] registry and
//!   exposes the lifecycle invariants the paper argues by (token
//!   conservation, zero deferred reads at quiescence, hop accounting);
//! - [`ChromeTraceSink`] records every event verbatim and exports it as
//!   JSONL or as a `chrome://tracing` / Perfetto `trace_event` file.
//!
//! Tracing is **off by default**: components hold an `Option<SharedSink>`
//! that is `None` unless explicitly attached, so the disabled cost is one
//! branch per would-be event.
//!
//! # Example
//!
//! ```
//! use ttda_trace::{shared, CountingSink, TraceEvent, TraceSink};
//! use ttda_sim::Cycle;
//!
//! let sink = shared(CountingSink::new());
//! sink.borrow_mut().record(Cycle(0), &TraceEvent::TokenEmit { pe: 0 });
//! sink.borrow_mut().record(Cycle(1), &TraceEvent::TokenConsume { pe: 0 });
//! sink.borrow_mut().record(Cycle(1), &TraceEvent::Halt { in_flight: 0 });
//! let s = sink.borrow();
//! let c = s.as_any().downcast_ref::<ttda_trace::CountingSink>().unwrap();
//! assert!(c.token_conservation_holds());
//! ```

#![warn(missing_docs)]

mod chrome;
mod counting;
mod metrics;

pub use chrome::ChromeTraceSink;
pub use counting::CountingSink;
pub use metrics::Metrics;

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

use ttda_sim::Cycle;

/// The presence-bit state of an I-structure cell, mirrored here so the
/// memory crate can report transitions without a dependency cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresenceState {
    /// Never written, no readers waiting.
    Empty,
    /// Written; reads are satisfied immediately.
    Present,
    /// Not yet written, with one or more deferred readers parked.
    Deferred,
}

/// One observable step in the life of a token, an I-structure cell, or a
/// network packet.
///
/// Events are deliberately small `Copy` values: constructing one is a few
/// register moves, and a disabled sink skips even that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A token came into existence (program input injection, instruction
    /// output, or an I-structure release) destined for processing
    /// element `pe`.
    TokenEmit {
        /// Destination processing element.
        pe: u32,
    },
    /// A token was consumed by the waiting–matching section of `pe`
    /// (it either completed a match or was parked as a partial one).
    TokenConsume {
        /// Consuming processing element.
        pe: u32,
    },
    /// A token was parked in the waiting–matching store as a partial
    /// match; `occupancy` is the store's entry count after parking.
    MatchWait {
        /// Processing element.
        pe: u32,
        /// Waiting–matching entries on this PE after the insert.
        occupancy: u64,
    },
    /// An instruction became enabled and fired.
    MatchFire {
        /// Processing element.
        pe: u32,
        /// Whether the firing was real ALU work.
        alu: bool,
        /// Pipeline service time charged for the firing (match + ALU +
        /// output sections); zero in the untimed emulator.
        busy: u64,
    },
    /// The untimed emulator finished one wave of `fired` simultaneous
    /// firings (the parallelism profile, one event per wave).
    WaveEnd {
        /// Instructions fired in this wave.
        fired: u64,
    },
    /// The machine reached quiescence; `in_flight` is the number of
    /// tokens still in queues or waves at that instant (0 for a clean
    /// halt).
    Halt {
        /// Tokens still un-consumed at halt.
        in_flight: u64,
    },
    /// An I-structure cell's presence bits changed state.
    Presence {
        /// The memory module (or structure id in the emulator).
        module: u32,
        /// State before the operation.
        from: PresenceState,
        /// State after the operation.
        to: PresenceState,
    },
    /// A read arrived before the producer's write and was parked;
    /// `depth` is the cell's deferred-list length after the enqueue.
    DeferEnqueue {
        /// The memory module.
        module: u32,
        /// Deferred readers parked on the cell after this enqueue.
        depth: u64,
    },
    /// A write released `released` parked readers from a cell's
    /// deferred list.
    DeferRelease {
        /// The memory module.
        module: u32,
        /// Readers released by the write.
        released: u64,
    },
    /// An I-structure read was serviced (`immediate` distinguishes a
    /// presence-bit hit from a deferral).
    IStoreRead {
        /// The memory module.
        module: u32,
        /// True when the cell was already written.
        immediate: bool,
    },
    /// An I-structure write was serviced.
    IStoreWrite {
        /// The memory module.
        module: u32,
    },
    /// A parallel-backend worker stole a batch of ready firings from a
    /// peer's queue instead of idling at the wave barrier. This is a
    /// *scheduling annotation*: its count and position depend on host
    /// thread scheduling, unlike every other event the deterministic
    /// backend emits.
    WorkSteal {
        /// The thief worker.
        pe: u32,
        /// The victim worker whose queue was split.
        from: u32,
        /// Ready firings moved by this steal.
        moved: u64,
    },
    /// A packet crossed the network: `hops` links, `queued` cycles lost
    /// to link contention, `latency` cycles end to end.
    PacketSend {
        /// Source port.
        from: u32,
        /// Destination port.
        to: u32,
        /// Links traversed (routing distance actually taken, including
        /// any detour around failed links).
        hops: u32,
        /// Cycles spent waiting for busy links.
        queued: u64,
        /// Total cycles from injection to delivery.
        latency: u64,
    },
}

impl TraceEvent {
    /// A short stable name for the event kind (metrics keys, JSON).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TokenEmit { .. } => "token_emit",
            TraceEvent::TokenConsume { .. } => "token_consume",
            TraceEvent::MatchWait { .. } => "match_wait",
            TraceEvent::MatchFire { .. } => "match_fire",
            TraceEvent::WaveEnd { .. } => "wave_end",
            TraceEvent::Halt { .. } => "halt",
            TraceEvent::Presence { .. } => "presence",
            TraceEvent::DeferEnqueue { .. } => "defer_enqueue",
            TraceEvent::DeferRelease { .. } => "defer_release",
            TraceEvent::IStoreRead { .. } => "istore_read",
            TraceEvent::IStoreWrite { .. } => "istore_write",
            TraceEvent::WorkSteal { .. } => "work_steal",
            TraceEvent::PacketSend { .. } => "packet_send",
        }
    }
}

/// A consumer of trace events.
///
/// Implementations must be cheap: hot paths call [`TraceSink::record`]
/// once per token, firing, memory operation and packet.
pub trait TraceSink {
    /// Receives one event stamped with the simulated time it occurred.
    fn record(&mut self, at: Cycle, ev: &TraceEvent);

    /// Upcast for recovering the concrete sink after a run.
    fn as_any(&self) -> &dyn Any;
}

/// A sink shared between a machine, its memory modules and its network.
///
/// Sinks are observed from the machine's *coordinating* thread only, so
/// `Rc<RefCell<…>>` is the right amount of machinery: one sink instance
/// observes the whole machine. Parallel backends never hand a
/// `SharedSink` to a worker thread (it is not `Send`); workers record
/// into [`EventBuffer`]s instead, which the coordinator replays into the
/// sink in a deterministic order.
pub type SharedSink = Rc<RefCell<dyn TraceSink>>;

/// Wraps a concrete sink for sharing across subsystems.
pub fn shared<S: TraceSink + 'static>(sink: S) -> SharedSink {
    Rc::new(RefCell::new(sink))
}

/// A sink that discards everything (useful for measuring sink overhead).
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _at: Cycle, _ev: &TraceEvent) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// An owned, order-preserving event buffer — the bridge between worker
/// threads and a (single-threaded) [`SharedSink`].
///
/// Worker threads cannot touch a `SharedSink` (it is `Rc`-based and not
/// `Send`), and even if they could, interleaving their events
/// nondeterministically would break the order-sensitive invariants
/// downstream sinks check (e.g. running waiting–matching occupancy).
/// Instead each worker records into its own `EventBuffer` — which *is*
/// `Send`, since events are plain `Copy` data — and the coordinating
/// thread replays the buffers into the real sink in a deterministic
/// merge order. The sink then observes exactly the event stream a
/// sequential run would have produced.
///
/// `EventBuffer` also implements [`TraceSink`], so code written against
/// the sink trait can record into a buffer unchanged.
#[derive(Debug, Default, Clone)]
pub struct EventBuffer {
    events: Vec<(Cycle, TraceEvent)>,
}

impl EventBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        EventBuffer { events: Vec::new() }
    }

    /// Appends one stamped event.
    pub fn push(&mut self, at: Cycle, ev: TraceEvent) {
        self.events.push((at, ev));
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The buffered events, in recording order.
    pub fn events(&self) -> &[(Cycle, TraceEvent)] {
        &self.events
    }

    /// Replays every buffered event into `sink`, preserving order and
    /// timestamps; the buffer is left empty.
    pub fn replay_into(&mut self, sink: &SharedSink) {
        let mut s = sink.borrow_mut();
        for (at, ev) in self.events.drain(..) {
            s.record(at, &ev);
        }
    }
}

impl TraceSink for EventBuffer {
    fn record(&mut self, at: Cycle, ev: &TraceEvent) {
        self.push(at, *ev);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_distinct() {
        let evs = [
            TraceEvent::TokenEmit { pe: 0 },
            TraceEvent::TokenConsume { pe: 0 },
            TraceEvent::MatchWait {
                pe: 0,
                occupancy: 0,
            },
            TraceEvent::MatchFire {
                pe: 0,
                alu: false,
                busy: 0,
            },
            TraceEvent::WaveEnd { fired: 0 },
            TraceEvent::Halt { in_flight: 0 },
            TraceEvent::Presence {
                module: 0,
                from: PresenceState::Empty,
                to: PresenceState::Present,
            },
            TraceEvent::DeferEnqueue {
                module: 0,
                depth: 0,
            },
            TraceEvent::DeferRelease {
                module: 0,
                released: 0,
            },
            TraceEvent::IStoreRead {
                module: 0,
                immediate: true,
            },
            TraceEvent::IStoreWrite { module: 0 },
            TraceEvent::WorkSteal {
                pe: 0,
                from: 0,
                moved: 0,
            },
            TraceEvent::PacketSend {
                from: 0,
                to: 0,
                hops: 0,
                queued: 0,
                latency: 0,
            },
        ];
        let mut kinds: Vec<&str> = evs.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), evs.len(), "event kinds must be unique");
    }

    #[test]
    fn null_sink_swallows_events() {
        let sink = shared(NullSink);
        sink.borrow_mut()
            .record(Cycle(3), &TraceEvent::TokenEmit { pe: 1 });
        assert!(sink.borrow().as_any().downcast_ref::<NullSink>().is_some());
    }

    #[test]
    fn event_buffer_is_send_and_replays_in_order() {
        fn assert_send<T: Send>() {}
        assert_send::<EventBuffer>();

        let mut buf = EventBuffer::new();
        buf.record(Cycle(1), &TraceEvent::TokenEmit { pe: 0 });
        buf.push(Cycle(2), TraceEvent::TokenConsume { pe: 0 });
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.events()[0], (Cycle(1), TraceEvent::TokenEmit { pe: 0 }));

        let sink = shared(CountingSink::new());
        buf.replay_into(&sink);
        assert!(buf.is_empty());
        let s = sink.borrow();
        let c = s.as_any().downcast_ref::<CountingSink>().unwrap();
        assert_eq!(c.tokens_emitted(), 1);
        assert_eq!(c.tokens_consumed(), 1);
    }
}
