//! A named registry over the `ttda-sim` measurement instruments.

use std::collections::BTreeMap;
use std::fmt;

use ttda_sim::stats::{Counter, Histogram};

/// A registry of named counters and histograms.
///
/// This extends the bare `ttda_sim::stats` instruments with *names*, so a
/// sink (or an experiment) can accumulate an open-ended set of metrics
/// and render them as one report. `BTreeMap` keeps the report order
/// deterministic.
///
/// # Example
///
/// ```
/// use ttda_trace::Metrics;
///
/// let mut m = Metrics::new();
/// m.counter("tokens").add(3);
/// m.counter("tokens").incr();
/// m.histogram("hops", 16, 1).record(4);
/// assert_eq!(m.counter_value("tokens"), 4);
/// assert_eq!(m.histogram_stats("hops").unwrap().count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<&'static str, Counter>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The named counter, created zeroed on first use.
    pub fn counter(&mut self, name: &'static str) -> &mut Counter {
        self.counters.entry(name).or_default()
    }

    /// The current value of a counter (0 if it was never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, Counter::get)
    }

    /// The named histogram, created with `bins` bins of `width` on first
    /// use (later calls ignore the shape arguments).
    pub fn histogram(&mut self, name: &'static str, bins: usize, width: u64) -> &mut Histogram {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bins, width))
    }

    /// Read access to a histogram, if it exists.
    pub fn histogram_stats(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates `(name, value)` over every counter in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, v)| (k, v.get()))
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counters:")?;
        for (name, c) in &self.counters {
            writeln!(f, "  {name:<24} {}", c.get())?;
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms:")?;
            for (name, h) in &self.histograms {
                write!(f, "  {name:<24} n={}", h.count())?;
                if let (Some(mean), Some(min), Some(max)) = (h.mean(), h.min(), h.max()) {
                    write!(f, " mean={mean:.2} min={min} max={max}")?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let mut m = Metrics::new();
        m.counter("a").add(2);
        m.counter("b").incr();
        m.counter("a").incr();
        assert_eq!(m.counter_value("a"), 3);
        assert_eq!(m.counter_value("b"), 1);
        assert_eq!(m.counter_value("never"), 0);
        let names: Vec<_> = m.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn histogram_shape_fixed_on_first_use() {
        let mut m = Metrics::new();
        m.histogram("h", 4, 10).record(35);
        m.histogram("h", 99, 1).record(5); // shape args ignored
        let h = m.histogram_stats("h").unwrap();
        assert_eq!(h.bins().len(), 4);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn report_renders_all_names() {
        let mut m = Metrics::new();
        m.counter("tokens").add(7);
        m.histogram("hops", 8, 1).record(3);
        let s = m.to_string();
        assert!(s.contains("tokens"));
        assert!(s.contains("hops"));
        assert!(s.contains('7'));
    }
}
