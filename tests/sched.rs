//! Scheduling-policy integration: criticality-aware token order must be
//! invisible in every observable output, bit-identical across worker
//! counts in deterministic mode, and exactly FIFO when every token ties.
//!
//! DESIGN.md §15: `SchedPolicy::Crit` reorders each engine's ready
//! tokens by remaining critical-path height, ties broken by arrival
//! order. These tests pin the two contracts that make that safe to ship
//! as a default-off policy: determinism (the deterministic backend's
//! full result does not depend on thread count under `Crit`) and
//! FIFO-degeneracy (a graph whose ready tokens all carry equal height
//! schedules exactly as the FIFO engines always did).

use ttda::core::opt::annotate_criticality;
use ttda::core::{
    Emulator, GraphBuilder, OpCode, Program, RunMode, SchedPolicy, TimedConfig, TimedMachine, Value,
};
use ttda::sim::Cycle;
use ttda::workloads::{id, reference};

#[test]
fn crit_is_bit_identical_across_thread_counts() {
    // The determinism property: under the deterministic backend the
    // wave is stably reordered by criticality *before* wave indices are
    // assigned, so the index-ordered merge never sees the policy and
    // the full `EmuResult` — outputs, firing counts, wave profile, peak
    // occupancies — is a pure function of the program and inputs.
    let cases: Vec<(&str, Vec<Value>)> = vec![
        (id::fib(), vec![Value::Int(12)]),
        (id::matmul(), vec![Value::Int(4)]),
        (id::producer_consumer(), vec![Value::Int(20)]),
    ];
    for (src, inputs) in cases {
        let p = ttda::idc::compile(src).expect("compiles");
        let seq = Emulator::new(&p)
            .with_mode(RunMode::Sequential)
            .with_sched(SchedPolicy::Crit)
            .run(&inputs)
            .expect("sequential crit runs");
        for threads in [1usize, 2, 4, 8] {
            let par = Emulator::new(&p)
                .with_threads(threads)
                .with_mode(RunMode::Deterministic)
                .with_sched(SchedPolicy::Crit)
                .run(&inputs)
                .expect("deterministic crit runs");
            assert_eq!(
                par, seq,
                "threads={threads}: crit schedule diverged from sequential"
            );
        }
    }
}

#[test]
fn crit_changes_no_outputs_on_any_engine() {
    let p = ttda::idc::compile(id::fib()).expect("compiles");
    let inputs = [Value::Int(13)];
    let want = Value::Int(reference::fib(13));
    for mode in [
        RunMode::Sequential,
        RunMode::Deterministic,
        RunMode::Relaxed,
    ] {
        let r = Emulator::new(&p)
            .with_threads(4)
            .with_mode(mode)
            .with_sched(SchedPolicy::Crit)
            .run(&inputs)
            .expect("crit runs");
        assert_eq!(r.outputs[&0], want, "{mode:?}");
    }
    for sched in [SchedPolicy::Fifo, SchedPolicy::Crit] {
        let cfg = TimedConfig {
            sched,
            ..TimedConfig::default()
        };
        let mut m = TimedMachine::ideal(p.clone(), 4, Cycle(5), cfg);
        assert_eq!(m.run(&inputs).expect("runs").outputs[&0], want, "{sched}");
    }
}

/// One parameter fanned out to `width` identical one-step chains, each
/// ending in its own output. Every non-terminal instruction sits at the
/// same critical-path height by symmetry, so after the parameter fires
/// the ready queue is all ties.
fn flat_fanout(width: u32) -> Program {
    let mut g = GraphBuilder::new("flat");
    let x = g.param();
    for i in 0..width {
        let n = g.instr(OpCode::Identity);
        g.wire(x, n, 0);
        let out = g.output(i);
        g.wire(n, out, 0);
    }
    let mut p = g.finish_program().expect("flat program builds");
    annotate_criticality(&mut p);
    p
}

#[test]
fn equal_criticality_degenerates_to_exact_fifo() {
    // The tie-break pin, at engine level: when every ready token carries
    // the same height, the bucket queue collapses to one bucket and the
    // stable criticality sort to the identity permutation, so a `Crit`
    // run must be *bit-identical* to the FIFO run — emulator result and
    // timed makespan both — not merely output-equal. If a future change
    // breaks the arrival-order tie-break, the wave profile or the
    // 2-PE makespan diverges here first.
    let p = flat_fanout(16);
    let inputs = [Value::Int(7)];
    let fifo = Emulator::new(&p).run(&inputs).expect("fifo runs");
    let crit = Emulator::new(&p)
        .with_sched(SchedPolicy::Crit)
        .run(&inputs)
        .expect("crit runs");
    assert_eq!(crit, fifo, "all-ties must schedule exactly as FIFO");
    let run = |sched: SchedPolicy| {
        let cfg = TimedConfig {
            sched,
            ..TimedConfig::default()
        };
        let r = TimedMachine::ideal(p.clone(), 2, Cycle(4), cfg)
            .run(&inputs)
            .expect("runs");
        (r.outputs.clone(), r.stats.cycles, r.stats.instructions)
    };
    assert_eq!(run(SchedPolicy::Fifo), run(SchedPolicy::Crit));
}

#[test]
fn crit_shortens_the_contended_timed_schedule() {
    // The whole point of the policy, pinned end to end on the Fig 2-2
    // trapezoid: at 2 PEs with a 4-cycle network, firing the
    // longest-remaining-path token first beats arrival order. E23
    // tables this across the workload set; this test keeps the headline
    // honest from the integration suite.
    let p =
        ttda::idc::compile_optimized(id::trapezoid(), ttda::idc::OptLevel::O2).expect("compiles");
    let inputs = [Value::Float(0.0), Value::Float(1.0), Value::Int(64)];
    let run = |sched: SchedPolicy| {
        let cfg = TimedConfig {
            sched,
            ..TimedConfig::default()
        };
        TimedMachine::ideal(p.clone(), 2, Cycle(4), cfg)
            .run(&inputs)
            .expect("runs")
    };
    let fifo = run(SchedPolicy::Fifo);
    let crit = run(SchedPolicy::Crit);
    assert_eq!(fifo.outputs, crit.outputs);
    assert!(
        crit.stats.cycles < fifo.stats.cycles,
        "crit must shorten the schedule: {} !< {}",
        crit.stats.cycles.0,
        fifo.stats.cycles.0
    );
}
