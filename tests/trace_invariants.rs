//! Trace-derived lifecycle invariants, checked end to end through the
//! public umbrella crate.
//!
//! These are the observability layer's acceptance tests: a counting sink
//! attached to a whole machine must reproduce the ledger the paper argues
//! by — every token created is eventually consumed, every deferred
//! I-structure read drains by quiescence, and every packet's traced hop
//! count agrees with the topology's own distance function.

use ttda::core::{Emulator, TimedConfig, TimedMachine, Value};
use ttda::net::{Fabric, FabricConfig, Hypercube, NodeId, Topology};
use ttda::sim::{Cycle, SimRng};
use ttda::trace::{shared, CountingSink};

fn counting(sink: &ttda::trace::SharedSink) -> std::cell::Ref<'_, CountingSink> {
    std::cell::Ref::map(sink.borrow(), |s| {
        s.as_any()
            .downcast_ref::<CountingSink>()
            .expect("counting sink")
    })
}

#[test]
fn producer_consumer_conserves_tokens_on_the_emulator() {
    let p = ttda::idc::compile(ttda::workloads::id::producer_consumer()).unwrap();
    let sink = shared(CountingSink::new());
    let r = Emulator::new(&p)
        .with_sink(sink.clone())
        .run(&[Value::Int(24)])
        .expect("producer-consumer runs");
    assert!(!r.outputs.is_empty());

    let c = counting(&sink);
    assert!(c.tokens_emitted() > 0);
    assert!(
        c.token_conservation_holds(),
        "tokens emitted ({}) != consumed ({}) + in flight ({:?})",
        c.tokens_emitted(),
        c.tokens_consumed(),
        c.in_flight_at_halt()
    );
    assert_eq!(
        c.deferred_outstanding(),
        0,
        "deferred I-structure reads must all drain by quiescence"
    );
    assert!(c.quiescent());
    // The producer/consumer program communicates through I-structures,
    // so the trace must actually show deferral traffic (reads racing
    // ahead of writes), not a trivially empty ledger.
    assert!(c.metrics().counter_value("istore_read") > 0);
    assert!(c.metrics().counter_value("istore_write") > 0);
}

#[test]
fn parallel_backend_preserves_the_trace_ledger() {
    // Worker threads buffer their events locally and the coordinator
    // replays them in canonical firing order, so a sink attached to the
    // parallel backend must see the *same* event stream as the
    // sequential emulator — same ledger, same counters, zero reordering.
    let p = ttda::idc::compile(ttda::workloads::id::producer_consumer()).unwrap();
    let seq_sink = shared(CountingSink::new());
    let seq = Emulator::new(&p)
        .with_sink(seq_sink.clone())
        .run(&[Value::Int(24)])
        .expect("sequential run");
    for threads in [2usize, 4] {
        let par_sink = shared(CountingSink::new());
        let par = Emulator::new(&p)
            .with_sink(par_sink.clone())
            .with_threads(threads)
            .run(&[Value::Int(24)])
            .expect("parallel run");
        assert_eq!(par, seq, "threads={threads}: result diverged");
        let c = counting(&par_sink);
        assert!(c.token_conservation_holds(), "threads={threads}");
        assert!(c.quiescent(), "threads={threads}");
        assert_eq!(c.deferred_outstanding(), 0, "threads={threads}");
        let s = counting(&seq_sink);
        assert_eq!(c.tokens_emitted(), s.tokens_emitted(), "threads={threads}");
        assert_eq!(
            c.tokens_consumed(),
            s.tokens_consumed(),
            "threads={threads}"
        );
        assert_eq!(
            c.metrics().counter_value("match_fire"),
            s.metrics().counter_value("match_fire"),
            "threads={threads}"
        );
        assert_eq!(
            c.metrics().counter_value("istore_read"),
            s.metrics().counter_value("istore_read"),
            "threads={threads}"
        );
        assert_eq!(
            c.metrics().counter_value("istore_write"),
            s.metrics().counter_value("istore_write"),
            "threads={threads}"
        );
    }
}

#[test]
fn producer_consumer_conserves_tokens_on_the_timed_machine() {
    let p = ttda::idc::compile(ttda::workloads::id::producer_consumer()).unwrap();
    let sink = shared(CountingSink::new());
    let cube = Hypercube::new(3).unwrap();
    let r = TimedMachine::new(p, cube, TimedConfig::default())
        .with_sink(sink.clone())
        .run(&[Value::Int(16)])
        .expect("producer-consumer runs timed");
    assert!(!r.outputs.is_empty());

    let c = counting(&sink);
    assert!(c.token_conservation_holds());
    assert!(c.quiescent());
    assert_eq!(c.tokens_emitted(), r.stats.tokens_delivered);
    assert_eq!(
        c.metrics().counter_value("match_fire"),
        r.stats.instructions
    );
    assert_eq!(c.packets(), r.stats.net_packets);
}

#[test]
fn traced_hop_counts_match_the_topology_distance() {
    // Drive random traffic through a traced fabric, then replay the same
    // endpoint sequence against Topology::hops: with no faults every
    // packet must take a shortest path.
    let cube = Hypercube::new(4).unwrap();
    let sink = shared(CountingSink::new());
    let mut fabric = Fabric::new(cube, FabricConfig::default()).with_sink(sink.clone());

    let mut rng = SimRng::seed(0x1983);
    let pairs: Vec<(NodeId, NodeId)> = (0..300)
        .map(|_| (NodeId(rng.gen_range(0..16)), NodeId(rng.gen_range(0..16))))
        .collect();
    for (i, &(a, b)) in pairs.iter().enumerate() {
        fabric.send(Cycle(i as u64), a, b);
    }

    let c = counting(&sink);
    assert_eq!(c.packets(), 300);
    assert_eq!(c.per_packet_hops().len(), 300);
    let mut expected_total = 0u64;
    for (k, &(a, b)) in pairs.iter().enumerate() {
        let want = fabric.topology().hops(a, b).unwrap() as u32;
        assert_eq!(
            c.per_packet_hops()[k],
            want,
            "packet {k} ({a:?} -> {b:?}) traced a non-shortest path"
        );
        expected_total += want as u64;
    }
    assert_eq!(c.total_hops(), expected_total);
    assert_eq!(c.total_hops(), fabric.stats().hops.get());
}

#[test]
fn hop_counts_stay_consistent_across_a_link_failure() {
    // After a fault the routed distance may exceed the pre-fault
    // distance, but the traced hops must still match what the (updated)
    // topology reports.
    let cube = Hypercube::new(3).unwrap();
    let sink = shared(CountingSink::new());
    let mut fabric = Fabric::new(cube, FabricConfig::default()).with_sink(sink.clone());

    fabric
        .topology_mut()
        .fail_link(NodeId(0), NodeId(1))
        .unwrap();
    let pairs = [
        (NodeId(0), NodeId(1)),
        (NodeId(1), NodeId(0)),
        (NodeId(0), NodeId(7)),
    ];
    for (i, &(a, b)) in pairs.iter().enumerate() {
        fabric.send(Cycle(i as u64), a, b);
    }

    let c = counting(&sink);
    for (k, &(a, b)) in pairs.iter().enumerate() {
        let want = fabric.topology().hops(a, b).unwrap() as u32;
        assert_eq!(c.per_packet_hops()[k], want, "packet {k} after fault");
    }
    // The failed direct link forces a detour: 0 -> 1 now takes 3 hops.
    assert_eq!(c.per_packet_hops()[0], 3);
}
