//! End-to-end tests for the decoordinated backends: work stealing on
//! the deterministic wave backend, and the relaxed backend's
//! output-equality contract on real workloads.

use ttda::core::{Emulator, ExecError, GraphBuilder, OpCode, Program, RunMode, Value};
use ttda::sim::{SimRng, Zipf};
use ttda::trace::{shared, CountingSink};

fn counting(sink: &ttda::trace::SharedSink) -> std::cell::Ref<'_, CountingSink> {
    std::cell::Ref::map(sink.borrow(), |s| {
        s.as_any()
            .downcast_ref::<CountingSink>()
            .expect("counting sink")
    })
}

/// A wide fan-out of independent `Identity` chains whose depths follow
/// a Zipf law: most chains run the full depth, a skewed tail quits
/// early. Every wave is hundreds of firings wide, so whichever worker
/// the scheduler favors drains its shard's queue and turns thief while
/// the others still hold work — the regime the steal path exists for.
fn skewed_chains(width: usize, max_depth: usize, seed: u64) -> Program {
    let mut g = GraphBuilder::new("chains");
    let x = g.param();
    let out = g.output(0);
    g.wire(x, out, 0);
    let mut rng = SimRng::seed(seed);
    let zipf = Zipf::new(max_depth, 1.2);
    for _ in 0..width {
        let depth = max_depth - zipf.sample(&mut rng);
        let mut prev = x;
        for _ in 0..depth {
            let n = g.instr(OpCode::Identity);
            g.wire(prev, n, 0);
            prev = n;
        }
        let sink = g.instr(OpCode::Sink);
        g.wire(prev, sink, 0);
    }
    g.finish_program().expect("chain program builds")
}

#[test]
fn work_stealing_fires_on_a_skewed_wide_program_and_preserves_results() {
    let p = skewed_chains(4096, 16, 0xC0FFEE);
    let seq = Emulator::new(&p)
        .with_mode(RunMode::Sequential)
        .run(&[Value::Int(7)])
        .expect("sequential run");
    // Whether a steal happens in a given run depends on host scheduling
    // (a worker must catch a peer mid-queue), so retry a few times; what
    // must hold on *every* run is bit-identity with the sequential
    // result, stolen firings included.
    let mut stole = 0;
    for _ in 0..20 {
        let sink = shared(CountingSink::new());
        let par = Emulator::new(&p)
            .with_threads(4)
            .with_mode(RunMode::Deterministic)
            .with_sink(sink.clone())
            .run(&[Value::Int(7)])
            .expect("parallel run");
        assert_eq!(par, seq, "a stolen firing changed the result");
        stole = counting(&sink).metrics().counter_value("work_steal");
        if stole > 0 {
            break;
        }
    }
    assert!(
        stole > 0,
        "no work-steal event in 20 runs of a 4096-wide skewed program"
    );
}

#[test]
fn relaxed_matches_sequential_outputs_on_workloads() {
    // Real workloads with loops, calls and I-structure traffic: the
    // relaxed backend must agree on outputs and the confluent counters
    // at every width, while waves/profile are legitimately absent.
    let cases: [(&str, String, Vec<Value>); 3] = [
        (
            "producer_consumer",
            ttda::workloads::id::producer_consumer().to_string(),
            vec![Value::Int(24)],
        ),
        (
            "trapezoid",
            ttda::workloads::id::trapezoid().to_string(),
            vec![Value::Int(1), Value::Int(9), Value::Int(64)],
        ),
        (
            "request_dag",
            ttda::workloads::id::request_dag(8, 4),
            vec![Value::Int(3)],
        ),
    ];
    for (name, src, inputs) in &cases {
        let p = ttda::idc::compile(src).expect("workload compiles");
        let seq = Emulator::new(&p)
            .with_mode(RunMode::Sequential)
            .run(inputs)
            .unwrap_or_else(|e| panic!("{name}: sequential run failed: {e}"));
        for threads in [1usize, 2, 4, 8] {
            let rel = Emulator::new(&p)
                .with_threads(threads)
                .relaxed()
                .run(inputs)
                .unwrap_or_else(|e| panic!("{name}: relaxed run failed: {e}"));
            assert_eq!(rel.outputs, seq.outputs, "{name} threads={threads}");
            assert_eq!(
                rel.instructions, seq.instructions,
                "{name} threads={threads}"
            );
            assert_eq!(rel.alu_ops, seq.alu_ops, "{name} threads={threads}");
            assert_eq!(rel.contexts, seq.contexts, "{name} threads={threads}");
            assert_eq!(
                rel.istore_writes, seq.istore_writes,
                "{name} threads={threads}"
            );
            assert_eq!(
                rel.istore_immediate + rel.istore_deferred,
                seq.istore_immediate + seq.istore_deferred,
                "{name} threads={threads}: total reads must be confluent"
            );
            assert_eq!(rel.waves, 0, "relaxed runs report no waves");
            assert!(rel.profile.is_empty(), "relaxed runs report no profile");
        }
    }
}

#[test]
fn relaxed_runs_out_of_fuel_like_sequential() {
    let p = ttda::idc::compile(ttda::workloads::id::producer_consumer()).unwrap();
    for threads in [1usize, 4] {
        let rel = Emulator::new(&p)
            .with_threads(threads)
            .relaxed()
            .with_fuel(10)
            .run(&[Value::Int(24)]);
        assert_eq!(rel, Err(ExecError::OutOfFuel), "threads={threads}");
    }
}

#[test]
fn relaxed_reports_deadlocks_with_the_exact_stranded_count() {
    // A two-input add whose second operand never arrives: the token
    // parks in the waiting–matching section forever. The stranded count
    // at quiescence is a property of the program, not the schedule, so
    // relaxed mode must report exactly the sequential number.
    let mut g = GraphBuilder::new("stuck");
    let a = g.param();
    let add = g.instr(OpCode::Alu(ttda::core::AluOp::Add));
    let out = g.output(0);
    g.wire(a, add, 0).wire(add, out, 0);
    let p = g.finish_program().expect("builds");
    let seq = Emulator::new(&p)
        .with_mode(RunMode::Sequential)
        .run(&[Value::Int(1)]);
    assert_eq!(seq, Err(ExecError::Deadlock { stranded: 1 }));
    for threads in [1usize, 4] {
        let rel = Emulator::new(&p)
            .with_threads(threads)
            .relaxed()
            .run(&[Value::Int(1)]);
        assert_eq!(rel, seq, "threads={threads}");
    }
}

#[test]
fn loop_bound_overrides_relaxed_mode() {
    // k-bounded loop scheduling is a global order-sensitive fixpoint;
    // it always runs on the sequential engine, even when the caller (or
    // the TTDA_RELAXED environment) asked for the relaxed backend. The
    // tell: a k-bounded run still reports its wave profile.
    let p = ttda::idc::compile(ttda::workloads::id::trapezoid()).unwrap();
    let inputs = [Value::Int(1), Value::Int(9), Value::Int(64)];
    let plain = Emulator::new(&p)
        .with_loop_bound(2)
        .run(&inputs)
        .expect("k-bounded run");
    let forced = Emulator::new(&p)
        .with_loop_bound(2)
        .with_threads(4)
        .relaxed()
        .run(&inputs)
        .expect("k-bounded run ignores relaxed");
    assert_eq!(forced, plain);
    assert!(forced.waves > 0, "k-bounded runs keep their wave profile");
}

#[test]
fn relaxed_traces_conserve_tokens() {
    // Relaxed traces carry no ordering promise, but the ledger must
    // still balance: every emitted token is consumed by quiescence and
    // deferred reads all drain.
    let p = ttda::idc::compile(ttda::workloads::id::producer_consumer()).unwrap();
    let sink = shared(CountingSink::new());
    let r = Emulator::new(&p)
        .with_threads(4)
        .relaxed()
        .with_sink(sink.clone())
        .run(&[Value::Int(24)])
        .expect("relaxed traced run");
    assert!(!r.outputs.is_empty());
    let c = counting(&sink);
    assert!(c.tokens_emitted() > 0);
    assert!(
        c.token_conservation_holds(),
        "tokens emitted ({}) != consumed ({}) + in flight ({:?})",
        c.tokens_emitted(),
        c.tokens_consumed(),
        c.in_flight_at_halt()
    );
    assert_eq!(c.deferred_outstanding(), 0);
    assert!(c.quiescent());
}
