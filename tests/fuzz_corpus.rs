//! Replays the pinned differential-fuzz corpus on every test run.
//!
//! `tests/fuzz_regressions.txt` pins `(family, seed)` pairs — scenarios
//! that once diverged, or that cover regimes worth permanent watch. Each
//! is regenerated from its pair and judged by the full cross-engine
//! oracle (sequential emulator, parallel backend at 2/4/8 threads, timed
//! machine, optimizing compiler, reference answers). This is the
//! PR-time arm of the fuzzer; the open-ended hunt runs nightly via
//! `ttda-bench fuzz`.

use ttda::workloads::fuzz::{self, run_scenario, Family, Outcome, Scenario};

const CORPUS: &str = include_str!("fuzz_regressions.txt");

fn corpus() -> Vec<(Family, u64)> {
    fuzz::parse_corpus(CORPUS)
        .unwrap_or_else(|(line, msg)| panic!("fuzz_regressions.txt line {line}: {msg}"))
}

#[test]
fn corpus_is_large_and_diverse_enough() {
    let corpus = corpus();
    assert!(
        corpus.len() >= 20,
        "pinned corpus shrank below 20 scenarios ({})",
        corpus.len()
    );
    let families: std::collections::HashSet<_> = corpus.iter().map(|(f, _)| *f).collect();
    assert!(
        families.len() >= 4,
        "pinned corpus covers only {} generator families",
        families.len()
    );
}

#[test]
fn every_pinned_scenario_agrees_across_engines() {
    for (family, seed) in corpus() {
        let sc = Scenario::generate(family, seed);
        let outcome = run_scenario(&sc);
        assert!(
            !outcome.is_divergence(),
            "pinned scenario {family} seed {seed} diverged:\n{outcome}\nspec: {:#?}",
            sc.spec
        );
        // Pinned scenarios are also expected to run cleanly — an
        // agree-on-error or fuel exhaustion here means a generator
        // regression changed what the seed produces.
        assert!(
            matches!(outcome, Outcome::Agree),
            "pinned scenario {family} seed {seed} no longer runs clean: {outcome}"
        );
    }
}

#[test]
fn replay_matches_generation_byte_for_byte() {
    // The corpus contract: a pinned pair regenerates the identical
    // scenario forever. Guard the generator against accidental drift —
    // any intentional change to generation must version the corpus.
    for (family, seed) in corpus() {
        let a = Scenario::generate(family, seed);
        let b = Scenario::generate(family, seed);
        assert_eq!(a, b, "{family} seed {seed} did not replay identically");
    }
}
