//! Property-based tests over the suite's core invariants, driven by the
//! in-tree `check` harness.

use ttda::core::{Emulator, RunMode, TimedConfig, TimedMachine, Value};
use ttda::mem::{Addr, IStructure, IStructureError, ReadOutcome};
use ttda::net::{Grid2d, Hypercube, NodeId, Omega, Topology};
use ttda::sim::{check, Cycle, EventQueue, SimRng, Zipf};
use ttda::workloads::fuzz::xexpr::{self, XExpr};

// ---------------------------------------------------------------------
// Compiler correctness: random integer expressions evaluate identically
// on the TTDA and on a direct recursive evaluator. The expression AST,
// generator and evaluator live in `ttda::workloads::fuzz::xexpr` (shared
// with the differential fuzzer); failures here shrink to a minimal tree
// via `check::forall_shrink`.
// ---------------------------------------------------------------------

/// One expression-property case: the tree plus its inputs (and a PE
/// count for the timed-machine property).
#[derive(Debug, Clone)]
struct ExprCase {
    e: XExpr,
    x: i64,
    y: i64,
    pes: usize,
}

fn gen_case(rng: &mut SimRng) -> ExprCase {
    ExprCase {
        e: xexpr::gen_expr(rng, 4, false),
        x: rng.gen_range(-50i64..50),
        y: rng.gen_range(-50i64..50),
        pes: rng.gen_range(1usize..5),
    }
}

/// Shrink the tree structurally (subtree substitution), then the inputs
/// and PE count toward their simplest values.
fn shrink_case(c: &ExprCase) -> Vec<ExprCase> {
    let mut out: Vec<ExprCase> = xexpr::shrink(&c.e)
        .into_iter()
        .map(|e| ExprCase { e, ..c.clone() })
        .collect();
    for (field, zeroed) in [
        (c.x, ExprCase { x: 0, ..c.clone() }),
        (c.y, ExprCase { y: 0, ..c.clone() }),
    ] {
        if field != 0 {
            out.push(zeroed);
        }
    }
    if c.pes > 1 {
        out.push(ExprCase {
            pes: 1,
            ..c.clone()
        });
    }
    out
}

#[test]
fn compiled_expressions_match_reference() {
    check::forall_shrink(
        "compiled expressions match reference",
        gen_case,
        shrink_case,
        |c| {
            let src = format!("def main(x, y) = {};", xexpr::to_src(&c.e));
            let p = ttda::idc::compile(&src).expect("generated programs compile");
            let r = Emulator::new(&p)
                .run(&[Value::Int(c.x), Value::Int(c.y)])
                .expect("generated programs run");
            // An unbound `t0` cannot appear in generated trees, but the
            // evaluator's convention (t = x at top level) is part of the
            // shared module's contract, so mirror it here.
            assert_eq!(r.outputs[&0], Value::Int(xexpr::eval(&c.e, c.x, c.y, c.x)));
        },
    );
}

#[test]
fn optimizer_preserves_random_expressions_at_every_level() {
    // 256 random expression programs through the whole pass pipeline:
    // every level must reproduce the unoptimized outputs exactly, and —
    // because the expression family is loop-free, so no pass can ever
    // *add* instructions — static instruction counts must be monotone
    // non-increasing in the level (O0 ≥ O1 ≥ O2).
    check::forall_shrink_cases(
        "optimizer preserves random expressions at every level",
        256,
        &gen_case,
        &shrink_case,
        &|c| {
            let src = format!("def main(x, y) = {};", xexpr::to_src(&c.e));
            let p = ttda::idc::compile(&src).expect("compiles");
            let want = Emulator::new(&p)
                .run(&[Value::Int(c.x), Value::Int(c.y)])
                .expect("runs")
                .outputs[&0];
            let mut last_static = usize::MAX;
            for level in ttda::core::opt::OptLevel::ALL {
                let (opt, _) = ttda::core::opt::optimize_at(&p, level);
                let got = Emulator::new(&opt)
                    .run(&[Value::Int(c.x), Value::Int(c.y)])
                    .expect("runs")
                    .outputs[&0];
                assert_eq!(got, want, "{level} changed the program output");
                assert!(
                    opt.instr_count() <= last_static,
                    "{level} grew the program: {} > {last_static}",
                    opt.instr_count()
                );
                last_static = opt.instr_count();
            }
        },
    );
}

#[test]
fn parallel_backend_matches_sequential_on_random_programs() {
    // The strongest promise the parallel wave backend makes: for *any*
    // program, the full `EmuResult` — outputs, instruction and ALU
    // counts, wave profile, peak matching-store occupancy, contexts — is
    // bit-identical to the sequential emulator's, at every worker count.
    // `threads = 1` runs the full coordination protocol with a single
    // worker (the mode is pinned, so a `TTDA_RELAXED` environment cannot
    // reroute the arms either).
    check::forall_shrink(
        "parallel backend matches sequential",
        gen_case,
        shrink_case,
        |c| {
            let src = format!("def main(x, y) = {};", xexpr::to_src(&c.e));
            let p = ttda::idc::compile(&src).expect("compiles");
            let inputs = [Value::Int(c.x), Value::Int(c.y)];
            let seq = Emulator::new(&p)
                .with_mode(RunMode::Sequential)
                .run(&inputs)
                .expect("runs");
            for threads in [1usize, 2, 4, 8] {
                let par = Emulator::new(&p)
                    .with_threads(threads)
                    .with_mode(RunMode::Deterministic)
                    .run(&inputs)
                    .expect("parallel backend runs");
                assert_eq!(par, seq, "threads={threads} diverged from sequential");
            }
        },
    );
}

#[test]
fn relaxed_backend_is_output_equal_on_random_programs() {
    // The relaxed backend's documented contract: program outputs and the
    // error discriminant match a sequential run exactly, for any program
    // and any worker count — only schedule artifacts (waves, occupancy
    // peaks, trace order) may differ. Generated expressions are
    // error-free, so the success half is what this property exercises;
    // the fuzz oracle covers the error half over a far wider family.
    check::forall_shrink(
        "relaxed backend is output-equal",
        gen_case,
        shrink_case,
        |c| {
            let src = format!("def main(x, y) = {};", xexpr::to_src(&c.e));
            let p = ttda::idc::compile(&src).expect("compiles");
            let inputs = [Value::Int(c.x), Value::Int(c.y)];
            let seq = Emulator::new(&p)
                .with_mode(RunMode::Sequential)
                .run(&inputs)
                .expect("runs");
            for threads in [2usize, 4, 8] {
                let rel = Emulator::new(&p)
                    .with_threads(threads)
                    .relaxed()
                    .run(&inputs)
                    .expect("relaxed backend runs");
                assert_eq!(
                    rel.outputs, seq.outputs,
                    "relaxed threads={threads} outputs diverged"
                );
                assert_eq!(rel.instructions, seq.instructions, "threads={threads}");
                assert_eq!(rel.alu_ops, seq.alu_ops, "threads={threads}");
                assert_eq!(rel.contexts, seq.contexts, "threads={threads}");
            }
        },
    );
}

#[test]
fn timed_machine_agrees_with_emulator_on_random_exprs() {
    check::forall_shrink(
        "timed machine agrees with emulator",
        gen_case,
        shrink_case,
        |c| {
            let src = format!("def main(x, y) = {};", xexpr::to_src(&c.e));
            let p = ttda::idc::compile(&src).expect("compiles");
            let want = Emulator::new(&p)
                .run(&[Value::Int(c.x), Value::Int(c.y)])
                .expect("runs")
                .outputs[&0];
            let mut m = TimedMachine::ideal(p, c.pes, Cycle(3), TimedConfig::default());
            let got = m
                .run(&[Value::Int(c.x), Value::Int(c.y)])
                .expect("runs")
                .outputs[&0];
            assert_eq!(got, want);
        },
    );
}

// ---------------------------------------------------------------------
// Waiting–matching store vs the HashMap it replaced.
// ---------------------------------------------------------------------

#[test]
fn matching_store_agrees_with_hashmap_model() {
    use std::collections::HashMap;
    use ttda::core::matching::{Absorbed, MatchingStore};
    use ttda::core::{ActivityName, CodeBlockId, Ctx, InstrId, Iter, Port};

    // The open-addressed store must be observationally identical to the
    // `HashMap<ActivityName, Vec<Option<Value>>>` transition function it
    // replaced: same park/enable outcome per token, operands in port
    // order, same occupancy after every operation, same resident key
    // set. Tag components are drawn from tiny ranges so the same
    // activity is revisited constantly, and arity is a deterministic
    // function of (c, s) — as in a real program, where it comes from
    // the instruction — spanning 1..=5 to cover both the inline and
    // spill representations.
    check::forall("matching store agrees with hashmap model", |rng| {
        let mut store = MatchingStore::new();
        let mut model: HashMap<ActivityName, Vec<Option<Value>>> = HashMap::new();
        let ops = rng.gen_range(1usize..200);
        for _ in 0..ops {
            let c = rng.gen_range(0u32..3);
            let s = rng.gen_range(0u32..7);
            let tag = ActivityName {
                u: Ctx(rng.gen_range(0u32..3)),
                c: CodeBlockId(c),
                s: InstrId(s),
                i: Iter(rng.gen_range(0u32..4)),
            };
            let arity = (1 + (c + s) % 5) as u8;
            let literal = if (c + s) % 3 == 0 && arity >= 2 {
                Some((Port(0), Value::Int((10 * c + s) as i64)))
            } else {
                None
            };
            let port = if rng.chance(0.05) {
                Port(arity + rng.gen_range(0u8..3)) // out of range
            } else {
                Port(rng.gen_range(0u8..arity))
            };
            let value = Value::Int(rng.gen_range(-100i64..100));

            // One step of the original HashMap transition function.
            let want = if port.0 >= arity {
                Err(())
            } else {
                let slots = model.entry(tag).or_insert_with(|| {
                    let mut v = vec![None; arity as usize];
                    if let Some((p, lv)) = literal {
                        v[p.0 as usize] = Some(lv);
                    }
                    v
                });
                slots[port.0 as usize] = Some(value);
                if slots.iter().all(Option::is_some) {
                    let operands: Vec<Value> = model
                        .remove(&tag)
                        .unwrap()
                        .into_iter()
                        .map(Option::unwrap)
                        .collect();
                    Ok(Some(operands))
                } else {
                    Ok(None)
                }
            };

            let got = store.absorb(tag, arity, literal, port, value);
            match (got, want) {
                (Err(_), Err(())) => {}
                (Ok(Absorbed::Parked), Ok(None)) => {}
                (Ok(Absorbed::Enabled(ops)), Ok(Some(want_ops))) => {
                    assert_eq!(
                        &ops[..],
                        &want_ops[..],
                        "operand order diverged for {tag:?}"
                    );
                }
                (got, want) => panic!("outcome diverged for {tag:?}: {got:?} vs {want:?}"),
            }
            assert_eq!(store.len(), model.len(), "occupancy diverged");
        }
        let mut store_keys = Vec::new();
        store.for_each_key(|k| store_keys.push((k.u.0, k.c.0, k.s.0, k.i.0)));
        store_keys.sort_unstable();
        let mut model_keys: Vec<_> = model.keys().map(|k| (k.u.0, k.c.0, k.s.0, k.i.0)).collect();
        model_keys.sort_unstable();
        assert_eq!(store_keys, model_keys, "resident key sets diverged");
    });
}

// ---------------------------------------------------------------------
// I-structure invariants under arbitrary operation interleavings.
// ---------------------------------------------------------------------

#[test]
fn istructure_semantics_hold() {
    check::forall("istructure semantics hold", |rng| {
        let mut m: IStructure<i64, usize> = IStructure::new(8);
        let mut written: [Option<i64>; 8] = [None; 8];
        let mut waiting: [usize; 8] = [0; 8];
        let ops = rng.gen_range(1usize..60);
        for seq in 0..ops {
            let slot = rng.gen_range(0usize..8);
            let addr = Addr(slot);
            if rng.chance(0.5) {
                let val = rng.gen_range(-100i64..100);
                match m.write(addr, val) {
                    Ok(released) => {
                        // First write: succeeds, releases every waiter.
                        assert!(written[slot].is_none());
                        assert_eq!(released.len(), waiting[slot]);
                        written[slot] = Some(val);
                        waiting[slot] = 0;
                    }
                    Err(IStructureError::AlreadyWritten { .. }) => {
                        // Second write: detected, value preserved.
                        assert!(written[slot].is_some());
                        assert_eq!(m.peek(addr).copied(), written[slot]);
                    }
                    Err(other) => panic!("unexpected error {other}"),
                }
            } else {
                match m.read(addr, seq).expect("in range") {
                    ReadOutcome::Value(v) => {
                        assert_eq!(Some(v), written[slot]);
                    }
                    ReadOutcome::Deferred => {
                        assert!(written[slot].is_none());
                        waiting[slot] += 1;
                    }
                }
            }
        }
    });
}

/// The packed bitmap/arena store and the enum-cell reference model are
/// observationally identical: same outcomes, same errors, same
/// deferred-release *order* (the release order is part of the engines'
/// determinism contract — the parallel backend replays releases in store
/// order, so a divergence here would change `EmuResult` between
/// engines), same presence/peek/counter views, and the same dropped
/// count on reclaim.
#[test]
fn packed_istructure_matches_enum_reference() {
    use ttda::mem::{EnumIStructure, Presence};

    check::forall("packed istructure matches enum reference", |rng| {
        let size = rng.gen_range(1usize..70);
        let mut packed: IStructure<i64, usize> = IStructure::new(size);
        let mut model: EnumIStructure<i64, usize> = EnumIStructure::new(size);
        let ops = rng.gen_range(1usize..120);
        for seq in 0..ops {
            // Mostly in-range; occasionally out of range to compare the
            // error paths too.
            let addr = if rng.chance(0.05) {
                Addr(size + rng.gen_range(0usize..4))
            } else {
                Addr(rng.gen_range(0usize..size))
            };
            match rng.gen_range(0u64..10) {
                // Write (racing sometimes, since addresses repeat).
                0..=3 => {
                    let val = rng.gen_range(-100i64..100);
                    let mut got = Vec::new();
                    let mut want = Vec::new();
                    let a = packed.write_with(addr, val, |r| got.push(r));
                    let b = model.write_with(addr, val, |r| want.push(r));
                    assert_eq!(a, b, "write outcome diverged at op {seq}");
                    assert_eq!(got, want, "release order diverged at op {seq}");
                }
                // Read.
                4..=8 => {
                    assert_eq!(
                        packed.read(addr, seq),
                        model.read(addr, seq),
                        "read outcome diverged at op {seq}"
                    );
                }
                // Occasional wholesale reclaim.
                _ => {
                    if rng.chance(0.25) {
                        assert_eq!(
                            packed.reclaim(),
                            model.reclaim(),
                            "reclaim dropped-count diverged"
                        );
                    }
                }
            }
            // Observational views agree after every operation. An
            // errored packed cell must still *look* Present (the race
            // keeps the first value).
            assert_eq!(packed.presence(addr), model.presence(addr));
            assert_eq!(packed.deferred_count(addr), model.deferred_count(addr));
            assert_eq!(packed.deferred_outstanding(), model.deferred_outstanding());
            if addr.0 < size {
                assert_eq!(packed.peek(addr), model.peek(addr));
            }
        }
        // Global walk order: cell order, then arrival order.
        let mut got = Vec::new();
        packed.for_each_deferred(|r| got.push(*r));
        let mut want = Vec::new();
        model.for_each_deferred(|r| want.push(*r));
        assert_eq!(got, want, "for_each_deferred order diverged");
        // The word-at-a-time bitmap audit agrees with the enum cells.
        let deferred_cells = (0..size)
            .filter(|&c| model.presence(Addr(c)) == Ok(Presence::Deferred))
            .count();
        assert_eq!(packed.deferred_cells(), deferred_cells);
        // Final teardown drops the same number of parked readers.
        assert_eq!(packed.reclaim(), model.reclaim());
        assert_eq!(packed.deferred_outstanding(), 0);
        assert_eq!(packed.error_cells(), 0);
    });
}

/// The same lockstep contract under *hot-key skew*: addresses come from
/// a Zipf distribution, so one cell accumulates long deferred-reader
/// lists while most cells stay cold. This is the regime where the packed
/// store's shared node arena is under real contention — many readers
/// parked on one cell, interleaved with releases and re-parks — and the
/// deferred-arena FIFO contract (release in arrival order; global walk
/// in cell order, then arrival order) is most likely to crack. Reads are
/// weighted above writes so the hot cell's list grows long before its
/// write releases the whole cohort at once.
#[test]
fn packed_istructure_matches_enum_reference_under_zipf_skew() {
    check::forall("packed istructure matches enum under zipf skew", |rng| {
        let size = rng.gen_range(4usize..70);
        let zipf = Zipf::new(size, 1.0 + rng.f64() * 1.5);
        let mut packed: IStructure<i64, usize> = IStructure::new(size);
        let mut model: ttda::mem::EnumIStructure<i64, usize> = ttda::mem::EnumIStructure::new(size);
        let ops = rng.gen_range(40usize..250);
        for seq in 0..ops {
            let addr = Addr(zipf.sample(rng));
            match rng.gen_range(0u64..10) {
                // Read-heavy: pile readers onto the hot head cells.
                0..=6 => {
                    assert_eq!(
                        packed.read(addr, seq),
                        model.read(addr, seq),
                        "read outcome diverged at op {seq}"
                    );
                }
                // Writes release whole cohorts; the release *order* must
                // be the arrival order, identically in both stores.
                7..=8 => {
                    let val = rng.gen_range(-100i64..100);
                    let mut got = Vec::new();
                    let mut want = Vec::new();
                    let a = packed.write_with(addr, val, |r| got.push(r));
                    let b = model.write_with(addr, val, |r| want.push(r));
                    assert_eq!(a, b, "write outcome diverged at op {seq}");
                    assert_eq!(got, want, "release order diverged at op {seq}");
                }
                // Occasional reclaim churns the node arena's free list,
                // so freshly recycled nodes carry hot-cell traffic.
                _ => {
                    if rng.chance(0.3) {
                        assert_eq!(packed.reclaim(), model.reclaim());
                    }
                }
            }
            assert_eq!(packed.deferred_count(addr), model.deferred_count(addr));
            assert_eq!(packed.deferred_outstanding(), model.deferred_outstanding());
        }
        let mut got = Vec::new();
        packed.for_each_deferred(|r| got.push(*r));
        let mut want = Vec::new();
        model.for_each_deferred(|r| want.push(*r));
        assert_eq!(got, want, "for_each_deferred order diverged under skew");
    });
}

// ---------------------------------------------------------------------
// Network invariants.
// ---------------------------------------------------------------------

#[test]
fn hypercube_routes_are_shortest_without_faults() {
    check::forall("hypercube routes are shortest without faults", |rng| {
        let dim = rng.gen_range(1usize..8);
        let n = 1 << dim;
        let cube = Hypercube::new(dim).expect("dim ok");
        let a = rng.gen_range(0usize..n);
        let b = rng.gen_range(0usize..n);
        let hops = cube.hops(NodeId(a), NodeId(b)).expect("reachable");
        assert_eq!(hops, (a ^ b).count_ones() as usize);
    });
}

#[test]
fn faulty_hypercube_routes_are_correct_or_unreachable() {
    check::forall("faulty hypercube routes correct or unreachable", |rng| {
        let dim = rng.gen_range(2usize..6);
        let n = 1usize << dim;
        let mut cube = Hypercube::new(dim).expect("dim ok");
        let faults = rng.gen_range(0usize..10);
        for _ in 0..faults {
            let node = NodeId(rng.gen_range(0usize..n));
            let nb = cube.neighbor(node, rng.gen_range(0usize..dim));
            let _ = cube.fail_link(node, nb);
        }
        let a = NodeId(rng.gen_range(0usize..n));
        let b = NodeId(rng.gen_range(0usize..n));
        match cube.path(a, b) {
            Ok(path) => {
                // A returned path must have at least Hamming-distance
                // hops and no more than 2n (the router's loop bound).
                let min = (a.0 ^ b.0).count_ones() as usize;
                assert!(path.len() >= min);
                assert!(path.len() <= 2 * n);
            }
            Err(_) => {
                // Unreachability must be symmetric.
                assert!(cube.path(b, a).is_err());
            }
        }
    });
}

#[test]
fn omega_and_grid_routes_have_expected_lengths() {
    check::forall("omega and grid route lengths", |rng| {
        let k = rng.gen_range(1usize..6);
        let n = 1 << k;
        let omega = Omega::new(n).expect("size ok");
        let s = rng.gen_range(0usize..n);
        let d = rng.gen_range(0usize..n);
        assert_eq!(omega.hops(NodeId(s), NodeId(d)).expect("routes"), k);

        let w = rng.gen_range(1usize..7);
        let h = rng.gen_range(1usize..7);
        let grid = Grid2d::new(w, h).expect("size ok");
        let ports = w * h;
        let hops = grid
            .hops(NodeId(s % ports), NodeId(d % ports))
            .expect("routes");
        assert!(hops <= grid.diameter());
    });
}

// ---------------------------------------------------------------------
// Kernel invariants.
// ---------------------------------------------------------------------

#[test]
fn event_queue_is_stable_priority_order() {
    check::forall("event queue is stable priority order", |rng| {
        let count = rng.gen_range(0usize..100);
        let mut q = EventQueue::new();
        for i in 0..count {
            q.push(Cycle(rng.gen_range(0u64..1000)), i);
        }
        let mut last: Option<(Cycle, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t > lt || (t == lt && i > li), "stability violated");
            }
            last = Some((t, i));
        }
    });
}

// ---------------------------------------------------------------------
// Wire-format roundtrip.
// ---------------------------------------------------------------------

fn gen_value(rng: &mut SimRng) -> ttda::core::Value {
    use ttda::core::{StructRef, Value as V};
    match rng.gen_range(0u32..5) {
        0 => V::Unit,
        1 => V::Bool(rng.chance(0.5)),
        2 => V::Int(rng.next_u64() as i64),
        3 => {
            // Any finite float; NaN breaks PartialEq so build from bits
            // and reject the NaN patterns.
            loop {
                let f = f64::from_bits(rng.next_u64());
                if !f.is_nan() {
                    break V::Float(f);
                }
            }
        }
        _ => V::Ptr(StructRef {
            id: rng.next_u32(),
            len: rng.next_u32(),
        }),
    }
}

#[test]
fn wire_tokens_roundtrip() {
    check::forall("wire tokens roundtrip", |rng| {
        use ttda::core::{wire, ActivityName, CodeBlockId, Ctx, InstrId, Iter, Port, Token};
        let t = Token::new(
            ActivityName {
                u: Ctx(rng.next_u32()),
                c: CodeBlockId(rng.next_u32()),
                s: InstrId(rng.next_u32()),
                i: Iter(rng.next_u32()),
            },
            Port(rng.gen_range(0u8..=u8::MAX)),
            gen_value(rng),
        );
        let pe = rng.gen_range(0u16..=u16::MAX);
        let nt = rng.gen_range(0u8..=u8::MAX);
        let bytes = wire::encode_token(&t, pe, nt);
        let (back, bpe, bnt) = wire::decode_token(&bytes).expect("roundtrip");
        assert_eq!(back, t);
        assert_eq!(bpe, pe);
        assert_eq!(bnt, nt);
    });
}
