//! Property-based tests over the suite's core invariants.

use proptest::prelude::*;

use ttda::core::{Emulator, TimedConfig, TimedMachine, Value};
use ttda::mem::{Addr, IStructure, IStructureError, ReadOutcome};
use ttda::net::{Grid2d, Hypercube, NodeId, Omega, Topology};
use ttda::sim::{Cycle, EventQueue};

// ---------------------------------------------------------------------
// Compiler correctness: random integer expressions evaluate identically
// on the TTDA and on a direct recursive evaluator.
// ---------------------------------------------------------------------

/// A little expression tree we can both print as Id source and evaluate.
#[derive(Debug, Clone)]
enum E {
    X,
    Y,
    K(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    If(Box<E>, Box<E>, Box<E>), // if c > 0 then a else b
    Let(Box<E>, Box<E>),        // { t = e1; e2[t] } where e2 may use `t`
    T,                          // the innermost bound `t` (X if none)
}

fn to_src(e: &E) -> String {
    match e {
        E::X => "x".into(),
        E::Y => "y".into(),
        E::T => "t0".into(),
        E::K(k) => {
            if *k < 0 {
                format!("(0 - {})", -(*k as i64))
            } else {
                k.to_string()
            }
        }
        E::Add(a, b) => format!("({} + {})", to_src(a), to_src(b)),
        E::Sub(a, b) => format!("({} - {})", to_src(a), to_src(b)),
        E::Mul(a, b) => format!("({} * {})", to_src(a), to_src(b)),
        E::If(c, a, b) => format!(
            "(if {} > 0 then {} else {})",
            to_src(c),
            to_src(a),
            to_src(b)
        ),
        E::Let(v, body) => format!("{{ t0 = {}; {} }}", to_src(v), to_src(body)),
    }
}

fn eval(e: &E, x: i64, y: i64, t: i64) -> i64 {
    match e {
        E::X => x,
        E::Y => y,
        E::T => t,
        E::K(k) => *k as i64,
        E::Add(a, b) => eval(a, x, y, t).wrapping_add(eval(b, x, y, t)),
        E::Sub(a, b) => eval(a, x, y, t).wrapping_sub(eval(b, x, y, t)),
        E::Mul(a, b) => eval(a, x, y, t).wrapping_mul(eval(b, x, y, t)),
        E::If(c, a, b) => {
            if eval(c, x, y, t) > 0 {
                eval(a, x, y, t)
            } else {
                eval(b, x, y, t)
            }
        }
        E::Let(v, body) => {
            let tv = eval(v, x, y, t);
            eval(body, x, y, tv)
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::X),
        Just(E::Y),
        any::<i8>().prop_map(E::K),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, a, b)| E::If(Box::new(c), Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone().prop_map(|b| substitute_t(b)))
                .prop_map(|(v, body)| E::Let(Box::new(v), Box::new(body))),
        ]
    })
}

/// Let-bodies may reference `t0`; give some leaves that chance.
fn substitute_t(e: E) -> E {
    match e {
        E::X => E::T,
        other => other,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_expressions_match_reference(e in expr_strategy(), x in -50i64..50, y in -50i64..50) {
        let src = format!("def main(x, y) = {};", to_src(&e));
        let p = ttda::idc::compile(&src).expect("generated programs compile");
        let r = Emulator::new(&p)
            .run(&[Value::Int(x), Value::Int(y)])
            .expect("generated programs run");
        prop_assert_eq!(r.outputs[&0], Value::Int(eval(&e, x, y, x)));
    }

    #[test]
    fn optimizer_preserves_random_expressions(e in expr_strategy(), x in -30i64..30, y in -30i64..30) {
        let src = format!("def main(x, y) = {};", to_src(&e));
        let p = ttda::idc::compile(&src).expect("compiles");
        let (opt, _) = ttda::core::opt::optimize(&p);
        let want = Emulator::new(&p).run(&[Value::Int(x), Value::Int(y)]).expect("runs").outputs[&0];
        let got = Emulator::new(&opt).run(&[Value::Int(x), Value::Int(y)]).expect("runs").outputs[&0];
        prop_assert_eq!(got, want);
    }

    #[test]
    fn timed_machine_agrees_with_emulator_on_random_exprs(
        e in expr_strategy(), x in -20i64..20, y in -20i64..20, pes in 1usize..5
    ) {
        let src = format!("def main(x, y) = {};", to_src(&e));
        let p = ttda::idc::compile(&src).expect("compiles");
        let want = Emulator::new(&p).run(&[Value::Int(x), Value::Int(y)]).expect("runs").outputs[&0];
        let mut m = TimedMachine::ideal(p, pes, Cycle(3), TimedConfig::default());
        let got = m.run(&[Value::Int(x), Value::Int(y)]).expect("runs").outputs[&0];
        prop_assert_eq!(got, want);
    }

    // -----------------------------------------------------------------
    // I-structure invariants under arbitrary operation interleavings.
    // -----------------------------------------------------------------

    #[test]
    fn istructure_semantics_hold(ops in proptest::collection::vec((0usize..8, any::<bool>(), -100i64..100), 1..60)) {
        let mut m: IStructure<i64, usize> = IStructure::new(8);
        let mut written: [Option<i64>; 8] = [None; 8];
        let mut waiting: [usize; 8] = [0; 8];
        for (seq, (slot, is_write, val)) in ops.into_iter().enumerate() {
            let addr = Addr(slot);
            if is_write {
                match m.write(addr, val) {
                    Ok(released) => {
                        // First write: succeeds, releases every waiter.
                        prop_assert!(written[slot].is_none());
                        prop_assert_eq!(released.len(), waiting[slot]);
                        written[slot] = Some(val);
                        waiting[slot] = 0;
                    }
                    Err(IStructureError::AlreadyWritten { .. }) => {
                        // Second write: detected, value preserved.
                        prop_assert!(written[slot].is_some());
                        prop_assert_eq!(m.peek(addr).copied(), written[slot]);
                    }
                    Err(other) => prop_assert!(false, "unexpected error {other}"),
                }
            } else {
                match m.read(addr, seq).expect("in range") {
                    ReadOutcome::Value(v) => {
                        prop_assert_eq!(Some(v), written[slot]);
                    }
                    ReadOutcome::Deferred => {
                        prop_assert!(written[slot].is_none());
                        waiting[slot] += 1;
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Network invariants.
    // -----------------------------------------------------------------

    #[test]
    fn hypercube_routes_are_shortest_without_faults(dim in 1usize..8, a in 0usize..256, b in 0usize..256) {
        let n = 1 << dim;
        let cube = Hypercube::new(dim).expect("dim ok");
        let (a, b) = (a % n, b % n);
        let hops = cube.hops(NodeId(a), NodeId(b)).expect("reachable");
        prop_assert_eq!(hops, (a ^ b).count_ones() as usize);
    }

    #[test]
    fn faulty_hypercube_routes_are_correct_or_unreachable(
        dim in 2usize..6,
        faults in proptest::collection::vec((0usize..64, 0usize..6), 0..10),
        a in 0usize..64, b in 0usize..64,
    ) {
        let n = 1usize << dim;
        let mut cube = Hypercube::new(dim).expect("dim ok");
        for (node, d) in faults {
            let node = NodeId(node % n);
            let nb = cube.neighbor(node, d % dim);
            let _ = cube.fail_link(node, nb);
        }
        let (a, b) = (NodeId(a % n), NodeId(b % n));
        match cube.path(a, b) {
            Ok(path) => {
                // A returned path must have at least Hamming-distance
                // hops and no more than 2n (the router's loop bound).
                let min = (a.0 ^ b.0).count_ones() as usize;
                prop_assert!(path.len() >= min);
                prop_assert!(path.len() <= 2 * n);
            }
            Err(_) => {
                // Unreachability must be symmetric.
                prop_assert!(cube.path(b, a).is_err());
            }
        }
    }

    #[test]
    fn omega_and_grid_routes_have_expected_lengths(k in 1usize..6, w in 1usize..7, h in 1usize..7, s in 0usize..64, d in 0usize..64) {
        let n = 1 << k;
        let omega = Omega::new(n).expect("size ok");
        prop_assert_eq!(omega.hops(NodeId(s % n), NodeId(d % n)).expect("routes"), k);

        let grid = Grid2d::new(w, h).expect("size ok");
        let ports = w * h;
        let hops = grid.hops(NodeId(s % ports), NodeId(d % ports)).expect("routes");
        prop_assert!(hops <= grid.diameter());
    }

    // -----------------------------------------------------------------
    // Kernel invariants.
    // -----------------------------------------------------------------

    #[test]
    fn event_queue_is_stable_priority_order(events in proptest::collection::vec(0u64..1000, 0..100)) {
        let mut q = EventQueue::new();
        for (i, t) in events.iter().enumerate() {
            q.push(Cycle(*t), i);
        }
        let mut last: Option<(Cycle, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "stability violated");
            }
            last = Some((t, i));
        }
    }
}

// ---------------------------------------------------------------------
// Wire-format roundtrip.
// ---------------------------------------------------------------------

fn value_strategy() -> impl Strategy<Value = ttda::core::Value> {
    use ttda::core::{StructRef, Value as V};
    prop_oneof![
        Just(V::Unit),
        any::<bool>().prop_map(V::Bool),
        any::<i64>().prop_map(V::Int),
        any::<f64>().prop_filter("NaN breaks PartialEq", |f| !f.is_nan()).prop_map(V::Float),
        (any::<u32>(), any::<u32>()).prop_map(|(id, len)| V::Ptr(StructRef { id, len })),
    ]
}

proptest! {
    #[test]
    fn wire_tokens_roundtrip(
        u in any::<u32>(), c in any::<u32>(), s in any::<u32>(), i in any::<u32>(),
        port in any::<u8>(), pe in any::<u16>(), nt in any::<u8>(),
        v in value_strategy(),
    ) {
        use ttda::core::{wire, ActivityName, CodeBlockId, Ctx, InstrId, Iter, Port, Token};
        let t = Token::new(
            ActivityName { u: Ctx(u), c: CodeBlockId(c), s: InstrId(s), i: Iter(i) },
            Port(port),
            v,
        );
        let bytes = wire::encode_token(&t, pe, nt);
        let (back, bpe, bnt) = wire::decode_token(&bytes).expect("roundtrip");
        prop_assert_eq!(back, t);
        prop_assert_eq!(bpe, pe);
        prop_assert_eq!(bnt, nt);
    }
}
