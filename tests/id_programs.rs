//! A breadth suite of Id programs beyond the paper's own examples —
//! exercising while-loops, nested conditionals, recursion and
//! I-structure access patterns together, always against a Rust
//! reference.

use ttda::core::{Emulator, TimedConfig, TimedMachine, Value};
use ttda::sim::Cycle;

fn run(src: &str, inputs: &[Value]) -> Value {
    let p = ttda::idc::compile(src).expect("compiles");
    let out = Emulator::new(&p).run(inputs).expect("runs").outputs[&0];
    // Every program in this suite must also run identically on a small
    // timed machine — breadth-first coverage of the whole stack.
    let mut m = TimedMachine::ideal(p, 3, Cycle(4), TimedConfig::default());
    let timed = m.run(inputs).expect("runs timed").outputs[&0];
    assert_eq!(out, timed, "engines disagree");
    out
}

#[test]
fn gcd_euclid() {
    // a mod b spelled as a - b*(a/b).
    let src = "def main(a, b) =
        (initial x = a; y = b
         while y > 0 do
           new x = y;
           new y = x - y * (x / y)
         return x);";
    let gcd = |mut a: i64, mut b: i64| {
        while b > 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    };
    for (a, b) in [(48, 18), (17, 5), (100, 75), (7, 7), (13, 1)] {
        assert_eq!(
            run(src, &[Value::Int(a), Value::Int(b)]),
            Value::Int(gcd(a, b)),
            "gcd({a},{b})"
        );
    }
}

#[test]
fn integer_power_by_squaring() {
    let src = "
        def pow(b, e) =
          if e == 0 then 1
          else { h = pow(b, e / 2);
                 if e - (e / 2) * 2 == 0 then h * h else h * h * b };
        def main(b, e) = pow(b, e);";
    for (b, e) in [(2i64, 10), (3, 5), (5, 0), (7, 3), (1, 30)] {
        assert_eq!(
            run(src, &[Value::Int(b), Value::Int(e)]),
            Value::Int(b.pow(e as u32)),
            "{b}^{e}"
        );
    }
}

#[test]
fn count_primes_by_trial_division() {
    let src = "
        def divides(d, n) = n - (n / d) * d == 0;
        def smallest_factor(n, d) =
          if d * d > n then n
          else if divides(d, n) then d
          else smallest_factor(n, d + 1);
        def is_prime(n) = if n < 2 then 0
                          else if smallest_factor(n, 2) == n then 1 else 0;
        def main(n) =
          (initial c = 0 for i from 2 to n do
             new c = c + is_prime(i)
           return c);";
    // pi(30) = 10, pi(50) = 15
    assert_eq!(run(src, &[Value::Int(30)]), Value::Int(10));
    assert_eq!(run(src, &[Value::Int(50)]), Value::Int(15));
}

#[test]
fn horner_polynomial_evaluation() {
    // p(x) = sum coeffs[i] * x^i with coeffs[i] = i + 1, via Horner from
    // the top coefficient down (array filled concurrently, read in
    // reverse — deferral-safe).
    let src = "def main(n, x) =
        { c = array(n);
          fill = (initial j = 0 for i from 0 to n - 1 do
                    c[i] <- i + 1;
                    new j = j + 1
                  return j);
          (initial acc = 0
           for k from 1 to n do
             new acc = acc * x + c[n - k]
           return acc) };";
    let horner = |n: i64, x: i64| {
        let mut acc = 0i64;
        for k in 1..=n {
            acc = acc * x + (n - k + 1);
        }
        acc
    };
    for (n, x) in [(1i64, 5), (4, 2), (6, 3)] {
        assert_eq!(
            run(src, &[Value::Int(n), Value::Int(x)]),
            Value::Int(horner(n, x)),
            "n={n} x={x}"
        );
    }
}

#[test]
fn binary_search_over_istructure() {
    // Array holds 3*i; find the index of a target value.
    let src = "
        def search(a, lo, hi, key) =
          if lo > hi then 0 - 1
          else { mid = (lo + hi) / 2;
                 v = a[mid];
                 if v == key then mid
                 else if v < key then search(a, mid + 1, hi, key)
                 else search(a, lo, mid - 1, key) };
        def main(n, key) =
          { a = array(n);
            fill = (initial j = 0 for i from 0 to n - 1 do
                      a[i] <- 3 * i;
                      new j = j + 1
                    return j);
            search(a, 0, n - 1, key) };";
    assert_eq!(run(src, &[Value::Int(16), Value::Int(21)]), Value::Int(7));
    assert_eq!(run(src, &[Value::Int(16), Value::Int(0)]), Value::Int(0));
    assert_eq!(run(src, &[Value::Int(16), Value::Int(45)]), Value::Int(15));
    assert_eq!(run(src, &[Value::Int(16), Value::Int(22)]), Value::Int(-1));
}

#[test]
fn dot_product_of_two_streams() {
    let src = "def main(n) =
        { a = array(n);
          b = array(n);
          fa = (initial j = 0 for i from 0 to n - 1 do
                  a[i] <- i + 1;
                  new j = j + 1
                return j);
          fb = (initial j = 0 for i from 0 to n - 1 do
                  b[i] <- n - i;
                  new j = j + 1
                return j);
          (initial s = 0 for i from 0 to n - 1 do
             new s = s + a[i] * b[i]
           return s) };";
    let reference = |n: i64| (0..n).map(|i| (i + 1) * (n - i)).sum::<i64>();
    for n in [1i64, 4, 12] {
        assert_eq!(
            run(src, &[Value::Int(n)]),
            Value::Int(reference(n)),
            "n={n}"
        );
    }
}

#[test]
fn collatz_steps_with_while() {
    let src = "def main(n) =
        (initial x = n; steps = 0
         while x > 1 do
           new x = if x - (x / 2) * 2 == 0 then x / 2 else 3 * x + 1;
           new steps = steps + 1
         return steps);";
    let collatz = |mut x: i64| {
        let mut s = 0;
        while x > 1 {
            x = if x % 2 == 0 { x / 2 } else { 3 * x + 1 };
            s += 1;
        }
        s
    };
    for n in [1i64, 6, 27] {
        assert_eq!(run(src, &[Value::Int(n)]), Value::Int(collatz(n)), "n={n}");
    }
}

#[test]
fn ackermann_small() {
    // The recursion stress test — thousands of contexts even at (2, 3).
    let src = "
        def ack(m, n) =
          if m == 0 then n + 1
          else if n == 0 then ack(m - 1, 1)
          else ack(m - 1, ack(m, n - 1));
        def main(m, n) = ack(m, n);";
    fn ack(m: i64, n: i64) -> i64 {
        if m == 0 {
            n + 1
        } else if n == 0 {
            ack(m - 1, 1)
        } else {
            ack(m - 1, ack(m, n - 1))
        }
    }
    for (m, n) in [(0i64, 4i64), (1, 3), (2, 3), (3, 3)] {
        assert_eq!(
            run(src, &[Value::Int(m), Value::Int(n)]),
            Value::Int(ack(m, n)),
            "ack({m},{n})"
        );
    }
}

#[test]
fn float_newton_sqrt() {
    let src = "def main(x) =
        (initial g = x
         while g * g - x > 0.000001 or x - g * g > 0.000001 do
           new g = (g + x / g) / 2.0
         return g);";
    let Value::Float(got) = run(src, &[Value::Float(2.0)]) else {
        panic!("float expected")
    };
    assert!((got - std::f64::consts::SQRT_2).abs() < 1e-3, "{got}");
}
