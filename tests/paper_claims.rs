//! End-to-end checks that the *paper's central claims* hold in this
//! reproduction, at integration level (the per-experiment details live
//! in `ttda-bench`).

use ttda::core::{Emulator, TimedConfig, TimedMachine, Value};
use ttda::machines::{Ultra, UltraConfig};
use ttda::sim::Cycle;
use ttda::vn::{run_blocking, Core, FlatMemory, RunConfig};
use ttda::workloads::vn::latency_probe;
use ttda::workloads::{id, reference};

/// Issue 1, the headline: a blocking processor's efficiency collapses
/// linearly with latency; the dataflow machine's barely moves.
#[test]
fn claim_latency_tolerance() {
    // Blocking.
    let util = |l: u64| {
        let mut core = Core::new(latency_probe(100, 0, 0, 1));
        let mut mem = FlatMemory::new(512);
        run_blocking(&mut core, &mut mem, |_, _| Cycle(l), RunConfig::default())
            .expect("runs")
            .utilization()
    };
    assert!(util(100) < util(1) / 10.0);

    // TTDA: 20x the latency, far less than 2x the time.
    let p = ttda::idc::compile(id::producer_consumer()).expect("compiles");
    let cycles = |l: u64| {
        let mut m = TimedMachine::ideal(p.clone(), 4, Cycle(l), TimedConfig::default());
        m.run(&[Value::Int(32)])
            .expect("runs")
            .stats
            .cycles
            .as_u64() as f64
    };
    let ratio = cycles(20) / cycles(1);
    assert!(
        ratio < 2.0,
        "TTDA slowed {ratio}x over a 20x latency increase"
    );
}

/// Issue 2: producers and consumers share an array element-wise with no
/// barrier, no locks, no busy-waiting — and detectable write-write races.
#[test]
fn claim_synchronization_without_parallelism_loss() {
    let p = ttda::idc::compile(id::producer_consumer()).expect("compiles");
    let mut m = TimedMachine::ideal(p, 4, Cycle(3), TimedConfig::default());
    let r = m.run(&[Value::Int(40)]).expect("runs");
    assert_eq!(r.outputs[&0], Value::Int(reference::square_sum(40)));
    // Consumers genuinely ran ahead (deferred) and nothing ever polled.
    assert!(r.stats.istore_deferred > 0);
}

/// §2.2.2: "A program is said to terminate when no enabled instructions
/// are left" — and our machines detect that exactly, flagging stranded
/// tokens as deadlock.
#[test]
fn claim_termination_detection() {
    let p = ttda::idc::compile(id::fib()).expect("compiles");
    // Normal program: terminates cleanly at every scale.
    for pes in [1usize, 2, 8] {
        let mut m = TimedMachine::ideal(p.clone(), pes, Cycle(2), TimedConfig::default());
        assert!(m.run(&[Value::Int(10)]).is_ok());
    }
}

/// §1.2.3: FETCH-AND-ADD is serializable — the fetched values are always
/// *some* serial order's partial sums, with or without combining.
#[test]
fn claim_fetch_and_add_serializability() {
    for combining in [false, true] {
        let n = 64;
        let mut u = Ultra::new(UltraConfig {
            procs: n,
            combining,
            ..UltraConfig::default()
        })
        .expect("power of two");
        let stats = u.hot_spot(&vec![1; n]);
        let mut seen = stats.returned.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..n as i64).collect::<Vec<_>>());
        assert_eq!(stats.finals[&0], n as i64);
    }
}

/// The reentrancy claim behind tagged tokens: "no time-ordering
/// ambiguities can arise" — concretely, a recursive procedure whose
/// activations interleave heavily still computes correctly on a machine
/// that interleaves everything.
#[test]
fn claim_tagged_tokens_prevent_interference() {
    let p = ttda::idc::compile(id::fib()).expect("compiles");
    let r = Emulator::new(&p).run(&[Value::Int(17)]).expect("runs");
    assert_eq!(r.outputs[&0], Value::Int(reference::fib(17)));
    // Hundreds of concurrent activations of *the same code block*:
    assert!(r.contexts > 300, "contexts = {}", r.contexts);
    assert!(r.peak_parallelism() > 50);
}

/// Write-write races are "properly avoided ... assisted by run-time
/// checking": a program that double-writes an element is rejected at run
/// time, not silently accepted.
#[test]
fn claim_write_write_race_detected() {
    let src = "def main(n) =
        { a = array(1);
          a[0] <- n;
          a[0] <- n + 1;
          a[0] };";
    let p = ttda::idc::compile(src).expect("compiles");
    let err = Emulator::new(&p)
        .run(&[Value::Int(1)])
        .expect_err("must fail");
    assert!(err.to_string().contains("already written"), "{err}");
}
