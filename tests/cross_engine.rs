//! Cross-crate integration: the emulator and the timed machine must
//! agree on every workload, over every topology, mapping policy and
//! machine size.
//!
//! This is the suite's strongest correctness lever: the two engines
//! share only the graph representation and the opcode semantics, so any
//! divergence in matching, tag manipulation, I-structure deferral or
//! routing shows up as a result mismatch here.

use ttda::core::{Emulator, Machine, MappingPolicy, TimedConfig, TimedMachine, Value};
use ttda::net::{ClusterTree, Crossbar, Grid2d, Hypercube, Omega};
use ttda::sim::Cycle;
use ttda::workloads::{id, reference};

fn emulate(src: &str, inputs: &[Value]) -> Value {
    let p = ttda::idc::compile(src).expect("compiles");
    let seq = Emulator::new(&p).run(inputs).expect("emulates");
    // Every emulated workload doubles as a determinism check on the
    // parallel wave backend: worker count must be invisible in the full
    // result, not just the answer.
    for threads in [2usize, 4] {
        let par = Emulator::new(&p)
            .with_threads(threads)
            .run(inputs)
            .expect("parallel backend runs");
        assert_eq!(par, seq, "threads={threads} diverged from sequential");
    }
    seq.outputs[&0]
}

#[test]
fn all_workloads_agree_across_pe_counts() {
    let cases: Vec<(&str, Vec<Value>, Value)> = vec![
        (
            id::fib(),
            vec![Value::Int(13)],
            Value::Int(reference::fib(13)),
        ),
        (
            id::producer_consumer(),
            vec![Value::Int(20)],
            Value::Int(reference::square_sum(20)),
        ),
        (
            id::relaxation(),
            vec![Value::Int(12)],
            Value::Int(reference::relaxation_checksum(12)),
        ),
        (
            id::matmul(),
            vec![Value::Int(4)],
            Value::Int(reference::matmul_checksum(4)),
        ),
    ];
    for (src, inputs, expected) in cases {
        assert_eq!(emulate(src, &inputs), expected);
        let p = ttda::idc::compile(src).expect("compiles");
        for pes in [1usize, 3, 8] {
            let mut m = TimedMachine::ideal(p.clone(), pes, Cycle(7), TimedConfig::default());
            let r = m.run(&inputs).expect("runs");
            assert_eq!(r.outputs[&0], expected, "pes={pes}");
        }
    }
}

#[test]
fn trapezoid_agrees_within_float_tolerance() {
    let inputs = [Value::Float(0.0), Value::Float(1.0), Value::Int(64)];
    let Value::Float(want) = emulate(id::trapezoid(), &inputs) else {
        panic!("float expected");
    };
    let p = ttda::idc::compile(id::trapezoid()).expect("compiles");
    for pes in [1usize, 4] {
        let mut m = TimedMachine::ideal(p.clone(), pes, Cycle(3), TimedConfig::default());
        let Value::Float(got) = m.run(&inputs).expect("runs").outputs[&0] else {
            panic!("float expected");
        };
        // Identical operation set, but token arrival order can reorder
        // float additions only if the graph allowed it; here the s-chain
        // is sequential, so the value must match bitwise.
        assert_eq!(got, want, "pes={pes}");
    }
}

#[test]
fn every_mapping_policy_agrees() {
    let p = ttda::idc::compile(id::fib()).expect("compiles");
    let want = Value::Int(reference::fib(11));
    for mapping in [
        MappingPolicy::ByIteration,
        MappingPolicy::ByContext,
        MappingPolicy::Spread,
    ] {
        let cfg = TimedConfig {
            mapping,
            ..TimedConfig::default()
        };
        let mut m = TimedMachine::ideal(p.clone(), 6, Cycle(5), cfg);
        assert_eq!(
            m.run(&[Value::Int(11)]).expect("runs").outputs[&0],
            want,
            "{mapping:?}"
        );
    }
}

#[test]
fn every_topology_runs_the_machine() {
    let p = ttda::idc::compile(id::producer_consumer()).expect("compiles");
    let want = Value::Int(reference::square_sum(16));
    let cfg = TimedConfig::default();

    let mut cube = TimedMachine::new(p.clone(), Hypercube::new(3).expect("cube"), cfg);
    assert_eq!(cube.run(&[Value::Int(16)]).expect("runs").outputs[&0], want);

    let mut xbar = TimedMachine::new(p.clone(), Crossbar::new(6).expect("xbar"), cfg);
    assert_eq!(xbar.run(&[Value::Int(16)]).expect("runs").outputs[&0], want);

    let mut omega = TimedMachine::new(p.clone(), Omega::new(8).expect("omega"), cfg);
    assert_eq!(
        omega.run(&[Value::Int(16)]).expect("runs").outputs[&0],
        want
    );

    let mut grid = TimedMachine::new(p.clone(), Grid2d::new(3, 3).expect("grid"), cfg);
    assert_eq!(grid.run(&[Value::Int(16)]).expect("runs").outputs[&0], want);

    let mut tree = TimedMachine::new(p, ClusterTree::new(2, 4).expect("tree"), cfg);
    assert_eq!(tree.run(&[Value::Int(16)]).expect("runs").outputs[&0], want);
}

#[test]
fn faulty_and_partitioned_cube_still_computes() {
    let p = ttda::idc::compile(id::fib()).expect("compiles");
    let want = Value::Int(reference::fib(10));

    let mut cube = Hypercube::new(4).expect("cube");
    // Take down three links; routing tables heal around them.
    cube.fail_link(ttda::net::NodeId(0), ttda::net::NodeId(1))
        .expect("fault");
    cube.fail_link(ttda::net::NodeId(2), ttda::net::NodeId(6))
        .expect("fault");
    cube.fail_link(ttda::net::NodeId(8), ttda::net::NodeId(12))
        .expect("fault");
    let mut m = TimedMachine::new(p, cube, TimedConfig::default());
    assert_eq!(m.run(&[Value::Int(10)]).expect("runs").outputs[&0], want);
}

#[test]
fn deterministic_across_repeat_runs() {
    let p = ttda::idc::compile(id::matmul()).expect("compiles");
    let mut cycles = Vec::new();
    for _ in 0..3 {
        let mut m = TimedMachine::ideal(p.clone(), 4, Cycle(5), TimedConfig::default());
        let r = m.run(&[Value::Int(3)]).expect("runs");
        cycles.push((r.stats.cycles, r.stats.instructions, r.stats.net_packets));
    }
    assert_eq!(cycles[0], cycles[1]);
    assert_eq!(cycles[1], cycles[2]);
}

#[test]
fn machine_trait_drives_both_engines() {
    // The unified `Machine` surface: one generic harness configures and
    // runs either engine — the emulator on its parallel backend, the
    // timed machine on its event queue — and reads the shared outputs.
    fn slot0<M: Machine>(m: M, inputs: &[Value]) -> Value {
        let mut m = m.with_fuel(10_000_000);
        let r = m.run(inputs).expect("runs");
        M::outputs(&r)[&0]
    }
    let p = ttda::idc::compile(id::fib()).expect("compiles");
    let want = Value::Int(reference::fib(12));
    assert_eq!(slot0(Emulator::new(&p), &[Value::Int(12)]), want);
    assert_eq!(
        slot0(Emulator::new(&p).with_threads(4), &[Value::Int(12)]),
        want
    );
    assert_eq!(
        slot0(
            TimedMachine::ideal(p, 4, Cycle(5), TimedConfig::default()),
            &[Value::Int(12)]
        ),
        want
    );
}

#[test]
fn emulator_statistics_are_meaningful() {
    let p = ttda::idc::compile(id::fib()).expect("compiles");
    let r = Emulator::new(&p).run(&[Value::Int(13)]).expect("runs");
    // Invariants across stats: profile sums to instruction count,
    // critical path = profile length, peak >= mean.
    assert_eq!(r.profile.iter().sum::<usize>() as u64, r.instructions);
    assert_eq!(r.profile.len() as u64, r.waves);
    assert!(r.peak_parallelism() as f64 >= r.mean_parallelism());
    assert!(r.alu_ops < r.instructions);
}

#[test]
fn wavefront_agrees_everywhere() {
    use ttda::workloads::{id, reference};
    let p = ttda::idc::compile(id::wavefront()).expect("compiles");
    let want = Value::Int(reference::wavefront_corner(9));
    let emu = Emulator::new(&p).run(&[Value::Int(9)]).expect("emulates");
    assert_eq!(emu.outputs[&0], want);
    for pes in [2usize, 7] {
        let mut m = TimedMachine::ideal(p.clone(), pes, Cycle(6), TimedConfig::default());
        let r = m.run(&[Value::Int(9)]).expect("runs");
        assert_eq!(r.outputs[&0], want, "pes={pes}");
        // Both engines execute the identical instruction multiset.
        assert_eq!(r.stats.instructions, emu.instructions, "pes={pes}");
    }
}

#[test]
fn compiled_trapezoid_has_fig22_shape() {
    use ttda::core::OpCode;
    let p = ttda::idc::compile(ttda::workloads::id::trapezoid()).expect("compiles");
    let main = p.block(p.main).expect("main exists");
    let count = |pred: &dyn Fn(&OpCode) -> bool| main.instrs.iter().filter(|i| pred(&i.op)).count();
    // Fig 2-2's operator inventory: one D / Switch / L / D⁻¹ per
    // circulating variable. The loop circulates s, x, the induction var
    // i, its bound and step, and the invariants (h and the f-triggering
    // environment) — at least five rings.
    let d = count(&|op| matches!(op, OpCode::D { .. }));
    let sw = count(&|op| matches!(op, OpCode::Switch));
    let l = count(&|op| matches!(op, OpCode::L));
    let dinv = count(&|op| matches!(op, OpCode::DInv));
    assert!(d >= 5, "D count {d}");
    assert_eq!(d, sw, "one Switch per circulating variable");
    assert_eq!(d, l, "one L per circulating variable");
    assert_eq!(d, dinv, "one D-inverse per circulating variable");
    // All D instructions of the single loop share one loop id.
    let mut ids: Vec<u32> = main
        .instrs
        .iter()
        .filter_map(|i| match i.op {
            OpCode::D { loop_id } => Some(loop_id),
            _ => None,
        })
        .collect();
    ids.dedup();
    assert_eq!(ids.len(), 1, "a single loop has a single loop id");
    // And f is a separate code block invoked by Apply.
    assert!(main
        .instrs
        .iter()
        .any(|i| matches!(i.op, OpCode::Apply { .. })));
    assert_eq!(p.blocks.len(), 2, "main + f");
}

#[test]
fn optimizer_preserves_every_workload() {
    use ttda::core::opt::optimize;
    let cases: Vec<(&str, Vec<Value>)> = vec![
        (id::fib(), vec![Value::Int(12)]),
        (id::producer_consumer(), vec![Value::Int(18)]),
        (id::relaxation(), vec![Value::Int(10)]),
        (id::matmul(), vec![Value::Int(3)]),
        (id::wavefront(), vec![Value::Int(6)]),
        (
            id::trapezoid(),
            vec![Value::Float(0.0), Value::Float(1.0), Value::Int(32)],
        ),
    ];
    for (src, inputs) in cases {
        let p = ttda::idc::compile(src).expect("compiles");
        let (opt, stats) = optimize(&p);
        assert!(
            stats.identities_collapsed > 0,
            "every Id program has junctions"
        );
        let a = Emulator::new(&p).run(&inputs).expect("runs");
        let b = Emulator::new(&opt).run(&inputs).expect("runs optimized");
        assert_eq!(a.outputs, b.outputs);
        assert!(
            b.instructions < a.instructions,
            "optimization must cut firings: {} !< {}",
            b.instructions,
            a.instructions
        );
        // And on the timed machine.
        let mut m = TimedMachine::ideal(opt, 4, Cycle(5), TimedConfig::default());
        assert_eq!(m.run(&inputs).expect("runs").outputs, a.outputs);
    }
}

#[test]
fn loop_bound_forces_the_sequential_backend() {
    // Pins a deliberate (previously undocumented) fallback: `submit`
    // dispatches to the parallel wave backend only when `threads > 1`
    // AND no k-bound is set — the parallel backend does not implement
    // iteration throttling, so `with_loop_bound(k)` must silently run
    // sequential no matter how many workers were requested. Two halves
    // to the pin:
    //
    //  1. the k-bound actually engages (the parallelism profile differs
    //     from the unbounded run — throttling is visible), and
    //  2. worker count is a no-op under a k-bound: the full `EmuResult`
    //     at 2 and 8 threads is bit-identical to 1 thread, *including*
    //     schedule-sensitive counters like `peak_matching`, which the
    //     sharded backend could not reproduce if it were engaged.
    // The runaway-consumer shape from ablation A4: a slow producer loop
    // against a fast consumer loop, where unbounded execution lets
    // iterations run far ahead — so a k-bound visibly stretches the
    // critical path and shrinks matching-store occupancy.
    let src = r#"
        def slow(x) = if x < 1 then 0 else slow(x - 1);
        def main(n) =
          { a = array(n);
            done = (initial j = 0 for i from 0 to n - 1 do
                      a[i] <- i + slow(6);
                      new j = j + slow(6)
                    return j);
            (initial s = 0 for i from 0 to n - 1 do
               new s = s + a[i]
             return s) };
    "#;
    let p = ttda::idc::compile(src).expect("compiles");
    let inputs = [Value::Int(24)];
    let want = Value::Int(23 * 24 / 2);

    let unbounded = Emulator::new(&p).run(&inputs).expect("runs");
    let bounded = Emulator::new(&p)
        .with_loop_bound(2)
        .run(&inputs)
        .expect("runs");
    assert_eq!(
        bounded.outputs[&0], want,
        "k-bounding must not change answers"
    );
    assert!(
        bounded.waves > unbounded.waves && bounded.peak_matching < unbounded.peak_matching,
        "k=2 should visibly throttle (waves {} -> {}, peak matching {} -> {}); if this \
         starts failing the workload no longer exercises the bound",
        unbounded.waves,
        bounded.waves,
        unbounded.peak_matching,
        bounded.peak_matching
    );

    for threads in [2usize, 8] {
        let threaded = Emulator::new(&p)
            .with_loop_bound(2)
            .with_threads(threads)
            .run(&inputs)
            .expect("runs");
        assert_eq!(
            threaded, bounded,
            "threads={threads} with a loop bound must be the sequential result exactly"
        );
    }
}
